"""The protocol-agnostic dissemination runner.

A :class:`Deployment` assembles simulator, channel, motes and protocol
nodes for one run; :meth:`Deployment.run_to_completion` drives the
simulation until every node holds the full image (or a deadline passes)
and returns a :class:`RunResult` exposing the paper's metrics.

Protocols are selected by a factory so MNP and the baselines run on
byte-identical channels (same seed => same per-edge loss factors), making
comparisons paired rather than merely sampled.
"""

from repro.core.config import MNPConfig
from repro.core.mnp import MNPNode
from repro.core.segments import CodeImage
from repro.hardware.mote import Mote, MoteConfig
from repro.metrics.collector import MetricsCollector
from repro.net.loss_models import EmpiricalLossModel
from repro.radio.channel import make_channel
from repro.radio.propagation import PropagationModel
from repro.sim.kernel import MINUTE, SECOND, Simulator


def _make_mnp(mote, config, image):
    return MNPNode(mote, config=config, image=image)


#: Known protocol factories: name -> fn(mote, config, image_or_None).
#: Baselines register themselves here on import (see repro.baselines).
PROTOCOLS = {"mnp": _make_mnp}


def register_protocol(name, factory):
    """Register a protocol factory (used by the baselines package)."""
    PROTOCOLS[name] = factory


class RunResult:
    """Everything the evaluation section measures, for one run."""

    def __init__(self, deployment, deadline_hit):
        self.deployment = deployment
        self.sim = deployment.sim
        self.topology = deployment.topology
        self.nodes = deployment.nodes
        self.motes = deployment.motes
        self.collector = deployment.collector
        self.deadline_hit = deadline_hit

    # ------------------------------------------------------------------
    # Reliability (coverage + accuracy)
    # ------------------------------------------------------------------
    @property
    def all_complete(self):
        return all(n.has_full_image for n in self.nodes.values())

    @property
    def coverage(self):
        """Fraction of nodes holding the complete image."""
        done = sum(1 for n in self.nodes.values() if n.has_full_image)
        return done / len(self.nodes)

    # ------------------------------------------------------------------
    # Time metrics
    # ------------------------------------------------------------------
    @property
    def completion_time_ms(self):
        """Time the last node got the code (None if incomplete)."""
        if not self.all_complete:
            return None
        times = [
            n.got_code_time for n in self.nodes.values()
            if n.got_code_time is not None
        ]
        return max(times) if times else None

    @property
    def completion_time_min(self):
        t = self.completion_time_ms
        return None if t is None else t / MINUTE

    def got_code_times_ms(self):
        """node -> time it obtained the full image (base station: 0)."""
        return {
            node_id: n.got_code_time
            for node_id, n in self.nodes.items()
            if n.got_code_time is not None
        }

    # ------------------------------------------------------------------
    # Radio / energy metrics
    # ------------------------------------------------------------------
    def active_radio_ms(self):
        """node -> total time its radio was on (Fig. 8)."""
        return {
            node_id: mote.radio.on_time_ms()
            for node_id, mote in self.motes.items()
        }

    def active_radio_no_initial_ms(self):
        """node -> active radio time excluding the initial idle listening
        before the node's first advertisement arrived (Fig. 9)."""
        totals = self.active_radio_ms()
        out = {}
        for node_id, total in totals.items():
            snapshot = self.collector.first_adv.get(node_id)
            before = snapshot[1] if snapshot is not None else 0.0
            out[node_id] = max(0.0, total - before)
        return out

    def average_active_radio_s(self):
        values = self.active_radio_ms().values()
        return sum(values) / len(self.motes) / SECOND

    def energy_nah(self):
        """node -> total consumed charge per Table 1 accounting."""
        return {node_id: n.energy_nah() for node_id, n in self.nodes.items()}

    def idle_listening_savings(self):
        """Fraction of would-be idle-listening time eliminated by sleeping:
        1 - (mean active radio time / completion time)."""
        completion = self.completion_time_ms
        if not completion:
            return None
        mean_active = sum(self.active_radio_ms().values()) / len(self.motes)
        return 1.0 - mean_active / completion

    # ------------------------------------------------------------------
    # Message metrics
    # ------------------------------------------------------------------
    def messages_sent(self):
        return dict(self.collector.tx_by_node)

    def messages_received(self):
        return dict(self.collector.rx_by_node)

    def parent_map(self):
        """node -> the parent it last downloaded from (Figs. 5-7)."""
        return dict(self.collector.parents)

    def sender_order(self):
        return self.collector.sender_order()

    def to_dict(self):
        """The run's headline metrics as a JSON-ready dict (used by the
        CLI's machine-readable output and by replication tooling)."""
        energy = self.energy_nah()
        return {
            "coverage": self.coverage,
            "all_complete": self.all_complete,
            "completion_ms": self.completion_time_ms,
            "deadline_hit": self.deadline_hit,
            "nodes": len(self.nodes),
            "avg_active_radio_s": self.average_active_radio_s(),
            "idle_listening_savings": self.idle_listening_savings(),
            "messages_sent": sum(self.messages_sent().values()),
            "messages_received": sum(self.messages_received().values()),
            "collisions": self.collector.collisions,
            "mean_energy_nah": sum(energy.values()) / len(energy),
            "senders": len(self.sender_order()),
        }

    def summary_metrics(self):
        """Superset of :meth:`to_dict` used by the parallel runner: adds
        the derived per-run scalars the sweep/replication layers consume,
        so serial and parallel paths reduce runs identically."""
        from repro.sim.kernel import SECOND

        metrics = self.to_dict()
        completion = self.completion_time_ms
        art_ni = self.active_radio_no_initial_ms()
        metrics.update({
            "completion_s": completion / SECOND if completion else None,
            "art_s": metrics["avg_active_radio_s"],
            "art_no_init_s": sum(art_ni.values()) / len(art_ni) / SECOND,
            "image_bytes": self.deployment.image.size_bytes,
            "seed": self.deployment.seed,
        })
        return metrics

    def images_intact(self, reference_image):
        """Accuracy check: every complete node's EEPROM content equals the
        disseminated image byte-for-byte."""
        expected = reference_image.to_bytes()
        for node in self.nodes.values():
            if node.has_full_image and hasattr(node, "assemble_image"):
                if node.assemble_image() != expected:
                    return False
        return True


def grid_experiment(spec):
    """Runner executor for the standard large-grid run (``experiment="grid"``).

    ``spec.overrides`` may carry ``rows``, ``cols``, ``n_segments``,
    ``segment_packets``, ``deadline_min``, and (for MNP) a ``config`` dict
    of :class:`MNPConfig` keyword arguments; anything unspecified falls
    back to the spec's pinned scale.  Returns the run's
    :meth:`RunResult.summary_metrics`.
    """
    from repro.experiments.active_radio import run_simulation_grid
    from repro.experiments.scale import get_scale

    scale = get_scale(spec.scale)
    ov = spec.overrides
    config_kwargs = ov.get("config")
    config = MNPConfig(**config_kwargs) if config_kwargs else None
    run = run_simulation_grid(
        rows=ov.get("rows", scale.grid[0]),
        cols=ov.get("cols", scale.grid[1]),
        n_segments=ov.get("n_segments", scale.n_segments),
        segment_packets=ov.get("segment_packets", scale.segment_packets),
        seed=spec.seed,
        config=config,
        protocol=spec.protocol,
        deadline_min=ov.get("deadline_min", 480),
    )
    return run.summary_metrics()


class Deployment:
    """One simulated deployment of a dissemination protocol.

    Parameters
    ----------
    topology:
        Node placement.
    image:
        The :class:`CodeImage` to disseminate (default: 2 full segments).
    protocol:
        Key into :data:`PROTOCOLS` ("mnp", "deluge", ...).
    protocol_config:
        Passed to the protocol factory (e.g. :class:`MNPConfig`).
    base_id:
        The node that initially holds the image (default: the paper's
        convention, a corner of the deployment).
    propagation / loss_model / mote_config / seed:
        Channel and hardware parameters; the default channel is the
        TOSSIM-like lossy grid at full power.
    groups_by_node:
        §6 multi-subset extension: optional mapping ``node id -> iterable
        of group ids`` assigning group memberships (MNP only); nodes
        absent from the mapping belong to no group and ignore
        group-targeted objects.
    node_ids:
        Optional subset of topology node ids to populate with motes
        (used by the region-sharded driver, which gives every tile the
        full topology but only its own motes).  ``base_id`` may then
        name a node outside the subset, in which case no local node
        holds the image.
    security:
        Optional :class:`repro.core.auth.SecurityConfig`.  When enabled,
        every node is armed with the secure OTA pipeline: the MNP family
        signs/verifies advertisements over the air, while baselines get
        the signed manifest pre-provisioned (their wire formats carry no
        signatures).  ``None`` (default) installs nothing at all.
    """

    def __init__(
        self,
        topology,
        image=None,
        protocol="mnp",
        protocol_config=None,
        base_id=None,
        propagation=None,
        loss_model=None,
        mote_config=None,
        seed=0,
        groups_by_node=None,
        node_ids=None,
        security=None,
    ):
        self.topology = topology
        self.image = image or CodeImage.random(program_id=1, n_segments=2,
                                               seed=seed)
        self.seed = seed
        self.sim = Simulator(seed=seed)
        self.collector = MetricsCollector(self.sim)
        self.propagation = propagation or PropagationModel.outdoor()
        self.loss_model = loss_model or EmpiricalLossModel(seed=seed)
        self.channel = make_channel(
            self.sim, topology, self.loss_model, self.propagation, seed=seed
        )
        self.mote_config = mote_config or MoteConfig()
        self.base_id = (
            topology.corner_node("bottom-left") if base_id is None else base_id
        )
        try:
            factory = PROTOCOLS[protocol]
        except KeyError:
            raise ValueError(
                f"unknown protocol {protocol!r}; known: {sorted(PROTOCOLS)}"
            ) from None
        if protocol == "mnp" and protocol_config is None:
            protocol_config = MNPConfig()
        self.motes = {}
        self.nodes = {}
        # The sharded driver builds motes for a tile's nodes only while
        # keeping the full topology (so ghost transmissions from
        # neighbouring tiles use identical link geometry).
        populated = (
            topology.node_ids() if node_ids is None else list(node_ids)
        )
        for node_id in populated:
            mote = Mote(self.sim, self.channel, node_id,
                        config=self.mote_config, seed=seed)
            self.motes[node_id] = mote
            node_image = self.image if node_id == self.base_id else None
            node = factory(mote, protocol_config, node_image)
            if groups_by_node is not None and hasattr(node, "groups"):
                node.groups = frozenset(groups_by_node.get(node_id, ()))
            self.nodes[node_id] = node
        self.security = security
        if security is not None and security.enabled:
            self._arm_security(security)

    def _arm_security(self, security):
        from repro.core.auth import ImageManifest

        manifest = ImageManifest.of_image(self.image, security.key)
        for node in self.nodes.values():
            if not hasattr(node, "configure_security"):
                continue
            if isinstance(node, MNPNode):
                # The MNP family learns the manifest over the air from
                # verified signed advertisements (bases sign their own).
                node.configure_security(security)
            else:
                node.configure_security(security, manifest=manifest)

    def install_all(self):
        """Drive the external start signal (§3.5) on every alive node
        holding a full image; returns ``{"installed": n, "rejected": n}``
        (nodes whose bootloader refused the staged image)."""
        installed = rejected = 0
        for node_id in sorted(self.nodes):
            if not self.motes[node_id].alive:
                continue
            node = self.nodes[node_id]
            if not node.has_full_image \
                    or not hasattr(node, "install_signal"):
                continue
            if node.install_signal():
                installed += 1
            else:
                rejected += 1
        return {"installed": installed, "rejected": rejected}

    def inject_outages(self, outages, nodes=None):
        """Wrap the channel's loss model with blackout windows (weather
        fades, interference bursts); see
        :class:`repro.net.loss_models.IntermittentLossModel`."""
        from repro.net.loss_models import IntermittentLossModel

        wrapped = IntermittentLossModel(self.sim, self.channel.loss_model,
                                        outages, nodes=nodes)
        self.channel.loss_model = wrapped
        self.loss_model = wrapped
        return wrapped

    def start(self):
        """Start every node (base stations begin advertising)."""
        for node in self.nodes.values():
            node.start()

    def run_to_completion(self, deadline_ms=4 * 60 * MINUTE,
                          check_every_ms=SECOND, settle_ms=0.0):
        """Start, run until all nodes have the image (or deadline), then
        optionally settle for ``settle_ms`` more, and return a RunResult."""
        self.start()
        done = self.sim.run_until(
            lambda: all(n.has_full_image for n in self.nodes.values()),
            check_every=check_every_ms,
            deadline=deadline_ms,
        )
        if done and settle_ms:
            self.sim.run(until=self.sim.now + settle_ms)
        return RunResult(self, deadline_hit=not done)
