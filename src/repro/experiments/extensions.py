"""Extension experiments: the paper's future-work ideas, measured.

* :func:`delta_vs_full` -- §5 complementarity: ship a difference script
  through MNP instead of the whole new image and compare cost.
* :func:`initial_sleep_schedule` -- the Fig. 9 discussion: an S-MAC-style
  synchronized duty cycle for nodes still waiting for the propagation
  wave, measured against always-listening MNP.
"""

from repro.core.config import MNPConfig
from repro.core.delta import delta_image, reconstruct_image
from repro.core.segments import CodeImage
from repro.experiments.common import Deployment
from repro.metrics.reports import format_table
from repro.net.loss_models import EmpiricalLossModel
from repro.net.topology import Topology
from repro.radio.propagation import PropagationModel
from repro.sim.kernel import MINUTE, SECOND


class UpdateOutcome:
    """Cost of shipping one update (full image or delta script)."""

    def __init__(self, label, image, run):
        self.label = label
        self.payload_bytes = image.size_bytes
        self.completion_s = run.completion_time_ms / SECOND \
            if run.completion_time_ms else None
        self.art_s = run.average_active_radio_s()
        self.data_tx = sum(
            1 for _, _, kind in run.collector.tx_log if kind == "DataPacket"
        )
        self.coverage = run.coverage
        energy = run.energy_nah()
        self.mean_energy_nah = sum(energy.values()) / len(energy)


def _run_update(image, rows, cols, seed):
    topo = Topology.grid(rows, cols, 10.0)
    dep = Deployment(
        topo, image=image, protocol="mnp",
        protocol_config=MNPConfig(query_update=True), seed=seed,
        propagation=PropagationModel(25.0, 3.0),
        loss_model=EmpiricalLossModel(seed=seed),
    )
    run = dep.run_to_completion(deadline_ms=4 * 60 * MINUTE)
    return dep, run


def delta_vs_full(rows=8, cols=8, n_segments=3, change_bytes=64, seed=0):
    """Ship an incremental firmware fix two ways: the whole v2 image vs
    the v1->v2 edit script, both via MNP on identical networks.

    Returns ``(full_outcome, delta_outcome, verified)`` where ``verified``
    confirms every node's reconstructed v2 is byte-identical.
    """
    v1 = CodeImage.random(1, n_segments=n_segments, segment_packets=64,
                          seed=seed)
    v1_bytes = v1.to_bytes()
    # A localized fix: overwrite `change_bytes` bytes in the middle.
    fix = bytes((i * 37 + 11) % 256 for i in range(change_bytes))
    middle = len(v1_bytes) // 2
    v2_bytes = v1_bytes[:middle] + fix + v1_bytes[middle + change_bytes:]
    v2 = CodeImage.from_bytes(2, v2_bytes, segment_packets=64)
    patch = delta_image(v1, v2)

    _, full_run = _run_update(v2, rows, cols, seed)
    patch_dep, patch_run = _run_update(patch, rows, cols, seed)

    verified = all(
        reconstruct_image(v1_bytes, node.assemble_image()) == v2_bytes
        for node in patch_dep.nodes.values()
        if node.has_full_image
    )
    return (UpdateOutcome("full image", v2, full_run),
            UpdateOutcome("delta script", patch, patch_run),
            verified)


def update_report(outcomes):
    rows = [
        [o.label, o.payload_bytes, f"{o.coverage:.0%}",
         f"{o.completion_s:.0f}" if o.completion_s else "-",
         f"{o.art_s:.0f}", o.data_tx, f"{o.mean_energy_nah / 1000:.0f}"]
        for o in outcomes
    ]
    return format_table(
        ["update as", "payload(B)", "coverage", "completion(s)",
         "avg ART(s)", "data tx", "energy(uAh)"],
        rows,
        title="Difference-based updates through MNP (§5 complementarity)",
    )


class CoexistenceOutcome:
    """Application health while a reprogramming protocol runs."""

    def __init__(self, label, delivery_ratio, generated, window_s,
                 completion_s, coverage):
        self.label = label
        self.delivery_ratio = delivery_ratio
        self.generated = generated
        self.window_s = window_s
        self.completion_s = completion_s
        self.coverage = coverage


def coexistence(reprogram_with=None, rows=6, cols=6, n_segments=2,
                seed=0, window_min=None):
    """Measure a live sensing application's delivery ratio while the
    network is (or is not) being reprogrammed.

    The paper requires dissemination to coexist with applications (§2);
    this quantifies the cost: MNP's sleeping silences relays (readings
    die at sleeping hops), while always-on protocols compete for the
    channel instead.

    ``reprogram_with`` is None (quiet baseline), "mnp", or "deluge".
    Returns a :class:`CoexistenceOutcome` measured over the reprogramming
    window (or ``window_min`` for the quiet baseline).
    """
    from repro.apps.mux import ProtocolMux
    from repro.apps.sensing import SensingApp, SensingConfig
    from repro.baselines.deluge import PageRequest, Summary
    from repro.core.messages import (
        Advertisement, DataPacket, DownloadRequest, EndDownload, Query,
        RepairRequest, StartDownload,
    )

    mnp_types = (Advertisement, DownloadRequest, StartDownload, DataPacket,
                 EndDownload, Query, RepairRequest)
    deluge_types = (Summary, PageRequest, DataPacket)

    topo = Topology.grid(rows, cols, 10.0)
    image = CodeImage.random(1, n_segments=n_segments, segment_packets=64,
                             seed=seed)
    dep = Deployment(
        topo, image=image, protocol=reprogram_with or "mnp", seed=seed,
        propagation=PropagationModel(25.0, 3.0),
        loss_model=EmpiricalLossModel(seed=seed),
    )
    sink_id = topo.corner_node("top-right")  # opposite the base station
    apps = {}
    for node_id, mote in dep.motes.items():
        mux = ProtocolMux(mote)
        if reprogram_with == "mnp":
            mux.attach_node(dep.nodes[node_id], mnp_types)
        elif reprogram_with == "deluge":
            mux.attach_node(dep.nodes[node_id], deluge_types)
        app = SensingApp(mote, SensingConfig(sample_interval_ms=4_000.0),
                         is_sink=(node_id == sink_id))
        mux.attach_node(app, SensingApp.MESSAGE_TYPES)
        apps[node_id] = app

    if reprogram_with is None:
        for mote in dep.motes.values():
            mote.wake_radio()
    else:
        dep.start()
    for app in apps.values():
        app.start()

    if reprogram_with is None:
        window = (window_min or 5) * MINUTE
        dep.sim.run(until=window)
        completion_s = None
        coverage = None
    else:
        dep.sim.run_until(
            lambda: all(n.has_full_image for n in dep.nodes.values()),
            check_every=SECOND, deadline=60 * MINUTE,
        )
        window = dep.sim.now
        completion_s = window / SECOND
        coverage = sum(
            1 for n in dep.nodes.values() if n.has_full_image
        ) / len(dep.nodes)

    sink = apps[sink_id]
    return CoexistenceOutcome(
        label=reprogram_with or "no reprogramming",
        delivery_ratio=sink.delivery_ratio(list(apps.values())),
        generated=sum(a.readings_generated for a in apps.values()),
        window_s=window / SECOND,
        completion_s=completion_s,
        coverage=coverage,
    )


def coexistence_report(outcomes):
    rows = [
        [o.label,
         f"{o.delivery_ratio:.0%}" if o.delivery_ratio is not None else "-",
         o.generated, f"{o.window_s:.0f}",
         f"{o.completion_s:.0f}" if o.completion_s else "-",
         f"{o.coverage:.0%}" if o.coverage is not None else "-"]
        for o in outcomes
    ]
    return format_table(
        ["scenario", "app delivery", "readings", "window(s)",
         "reprog done(s)", "coverage"],
        rows,
        title="Application traffic while reprogramming (§2 coexistence)",
    )


def mnp_over_tdma(rows=8, cols=8, n_segments=2, seed=0, slot_ms=30.0):
    """§6: run MNP over an SS-TDMA style slotted MAC and compare with the
    stock CSMA run on an identical network.

    Returns ``(csma_run, tdma_run, schedule)``.  The TDMA schedule is a
    distance-2 coloring at the interference range, so concurrent
    transmissions can never collide; the price is slot-waiting latency.
    """
    from repro.hardware.mote import MoteConfig
    from repro.radio.tdma import TdmaMac, build_tdma_schedule

    range_ft = 25.0
    topo = Topology.grid(rows, cols, 10.0)
    image = CodeImage.random(1, n_segments=n_segments, segment_packets=64,
                             seed=seed)
    schedule = build_tdma_schedule(topo, range_ft, slot_ms=slot_ms)

    def run(mac_factory):
        dep = Deployment(
            topo, image=image, protocol="mnp", seed=seed,
            propagation=PropagationModel(range_ft, 3.0),
            loss_model=EmpiricalLossModel(seed=seed),
            mote_config=MoteConfig(mac_factory=mac_factory),
        )
        return dep.run_to_completion(deadline_ms=8 * 60 * MINUTE)

    csma_run = run(None)
    tdma_run = run(
        lambda sim, radio, channel, seed_: TdmaMac(sim, radio, channel,
                                                   schedule, seed=seed_)
    )
    return csma_run, tdma_run, schedule


def initial_sleep_schedule(rows=10, cols=10, n_segments=2, duty=0.5,
                           period_ms=2_000.0, seed=0):
    """The Fig. 9 fix the paper sketches: let idle nodes duty-cycle their
    radio on a synchronized schedule until the first advertisement
    arrives, instead of listening continuously.

    Implemented as a harness-level schedule (all nodes share phase, as
    S-MAC would arrange): each idle-waiting node's radio is switched off
    for ``(1-duty)`` of every ``period_ms`` until it has heard its first
    advertisement.  Returns ``(baseline_run, scheduled_run)``.
    """
    from repro.core.states import MNPState

    def run(schedule):
        topo = Topology.grid(rows, cols, 10.0)
        image = CodeImage.random(1, n_segments=n_segments,
                                 segment_packets=64, seed=seed)
        dep = Deployment(
            topo, image=image, protocol="mnp", seed=seed,
            propagation=PropagationModel(25.0, 3.0),
            loss_model=EmpiricalLossModel(seed=seed),
        )
        if schedule:
            def tick(off):
                for node in dep.nodes.values():
                    if node.heard_first_adv or node is dep.nodes[dep.base_id]:
                        continue
                    if node.state != MNPState.IDLE:
                        continue
                    if off:
                        node.mote.sleep_radio()
                    else:
                        node.mote.wake_radio()
                dep.sim.schedule(
                    period_ms * (duty if off else (1 - duty)),
                    tick, not off,
                )

            dep.sim.schedule(period_ms * duty, tick, True)
        return dep.run_to_completion(deadline_ms=4 * 60 * MINUTE)

    return run(schedule=False), run(schedule=True)
