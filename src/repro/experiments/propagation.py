"""Code-propagation dynamics: Figure 13 and the anti-Deluge claim.

Fig. 13 shows the code propagation wavefront for a single segment: which
nodes hold the segment at 30%, 60% and 90% of the completion time.  The
paper's observations:

* data propagates at a fairly constant rate from the base station to the
  far corner;
* the "dynamic behavior" reported for Deluge by Hui & Culler -- where
  propagation along the grid diagonal is significantly slower than along
  the edges, a hidden-terminal artifact -- does **not** appear in MNP,
  because sender selection serializes neighborhoods.

``diagonal_edge_ratio`` quantifies the second claim so it can be compared
between MNP and Deluge on identical channels.
"""

import math

from repro.experiments.active_radio import run_simulation_grid
from repro.metrics.reports import format_grid


def run_propagation(seed=0, protocol="mnp", rows=None, cols=None,
                    segment_packets=None):
    """Single-segment dissemination for wavefront analysis."""
    return run_simulation_grid(rows=rows, cols=cols, n_segments=1,
                               segment_packets=segment_packets, seed=seed,
                               protocol=protocol)


def snapshot(run, fraction):
    """Which nodes held the full (single-segment) image at
    ``fraction * completion_time``; rendered as a 0/1 grid."""
    cutoff = run.completion_time_ms * fraction
    held = {
        node: 1.0 if t <= cutoff else 0.0
        for node, t in run.got_code_times_ms().items()
    }
    return held


def fig13_report(run, fractions=(0.3, 0.6, 0.9)):
    topo = run.deployment.topology
    parts = ["Fig. 13 -- code propagation progress (1 = segment held)"]
    for fraction in fractions:
        parts.append(f"at {fraction:.0%} of completion time:")
        parts.append(format_grid(snapshot(run, fraction), topo,
                                 fmt="{:1.0f}", missing="."))
    return "\n".join(parts)


def arrival_vs_distance(run):
    """(distance from base, arrival time) pairs -- constant propagation
    rate shows as a straight line."""
    topo = run.deployment.topology
    base = run.deployment.base_id
    return sorted(
        (topo.distance(base, node), t)
        for node, t in run.got_code_times_ms().items()
        if node != base
    )


def diagonal_edge_ratio(run, band_ft=None):
    """Mean arrival time of diagonal nodes over edge nodes at matched
    distances from the base corner.

    For each diagonal node (|x - y| small) we find edge nodes (on the
    x- or y-axis) at a similar Euclidean distance from the base and
    compare arrival times; the returned value is the mean ratio.  Deluge's
    hidden-terminal dynamic makes this noticeably > 1; MNP should stay
    near 1.
    """
    topo = run.deployment.topology
    base = run.deployment.base_id
    bx, by = topo.positions[base]
    times = run.got_code_times_ms()
    spacing = band_ft or _grid_spacing(topo)
    edge_nodes = []
    diag_nodes = []
    for node, t in times.items():
        if node == base:
            continue
        x, y = topo.positions[node]
        dx, dy = abs(x - bx), abs(y - by)
        dist = math.hypot(dx, dy)
        if dist <= 2 * spacing:
            continue  # too close to separate edge from diagonal
        if dx < 0.5 * spacing or dy < 0.5 * spacing:
            edge_nodes.append((dist, t))
        elif abs(dx - dy) <= 1.5 * spacing:
            diag_nodes.append((dist, t))
    ratios = []
    for dist, t_diag in diag_nodes:
        matched = [t for d, t in edge_nodes if abs(d - dist) <= 1.5 * spacing]
        if matched:
            mean_edge = sum(matched) / len(matched)
            if mean_edge > 0:
                ratios.append(t_diag / mean_edge)
    return sum(ratios) / len(ratios) if ratios else None


def wavefront_speed_ft_per_s(run):
    """Least-squares slope of distance-from-base vs arrival time -- the
    quantified version of Fig. 13's "fairly constant rate" (returns feet
    per second, None with fewer than two arrivals)."""
    pairs = arrival_vs_distance(run)
    if len(pairs) < 2:
        return None
    n = len(pairs)
    mean_t = sum(t for _, t in pairs) / n
    mean_d = sum(d for d, _ in pairs) / n
    stt = sum((t - mean_t) ** 2 for _, t in pairs)
    std = sum((t - mean_t) * (d - mean_d) for d, t in pairs)
    if stt == 0:
        return None
    return (std / stt) * 1000.0  # ms -> s


def _grid_spacing(topo):
    xs = sorted({p[0] for p in topo.positions})
    gaps = [b - a for a, b in zip(xs, xs[1:]) if b > a]
    return min(gaps) if gaps else 1.0
