"""Multi-seed replication: means, deviations, and paired comparisons.

The paper reports single runs ("we repeated our experiments several
times; we found that the results are similar", §4.1).  This module makes
that claim checkable: run an experiment across seeds, aggregate each
metric, and test paired protocol comparisons seed-by-seed (both
protocols see the identical channel realization for a given seed, so a
sign test over seeds is the right comparison).
"""

import math

from repro.metrics.reports import format_table


class MetricStats:
    """Mean / stdev / min / max of one metric across seeds."""

    def __init__(self, name, values):
        values = [v for v in values if v is not None]
        self.name = name
        self.n = len(values)
        self.values = values
        if values:
            self.mean = sum(values) / len(values)
            self.min = min(values)
            self.max = max(values)
            if len(values) > 1:
                var = sum((v - self.mean) ** 2 for v in values) / \
                    (len(values) - 1)
                self.stdev = math.sqrt(var)
            else:
                self.stdev = 0.0
        else:
            self.mean = self.min = self.max = self.stdev = None

    def __repr__(self):
        if self.mean is None:
            return f"<{self.name}: no data>"
        return (f"<{self.name}: {self.mean:.1f} +/- {self.stdev:.1f} "
                f"[{self.min:.1f}, {self.max:.1f}] n={self.n}>")


def replicate(experiment, seeds):
    """Run ``experiment(seed) -> dict[str, number]`` for each seed and
    aggregate each metric into a :class:`MetricStats`."""
    per_seed = [experiment(seed) for seed in seeds]
    keys = sorted({k for result in per_seed for k in result})
    return {
        key: MetricStats(key, [result.get(key) for result in per_seed])
        for key in keys
    }


#: The headline metrics replicated comparisons aggregate by default.
HEADLINE_METRICS = ("completion_s", "art_s", "collisions", "coverage")


def replication_specs(seeds, rows=6, cols=6, n_segments=2,
                      segment_packets=32, protocol="mnp", scale="default"):
    """Build one grid :class:`repro.runner.RunSpec` per seed.

    Every dimension is pinned explicitly, so the resulting cache keys do
    not depend on the ambient ``REPRO_SCALE``.
    """
    from repro.runner import RunSpec

    return [
        RunSpec("grid", protocol=protocol, scale=scale, seed=seed,
                rows=rows, cols=cols, n_segments=n_segments,
                segment_packets=segment_packets)
        for seed in seeds
    ]


def replicate_specs(specs, workers=0, cache_dir=None, progress=None,
                    metrics=HEADLINE_METRICS):
    """Execute ``specs`` (serially or on a worker fleet) and aggregate.

    Returns ``{metric: MetricStats}`` over the spec list, in spec order.
    ``metrics=None`` aggregates every key the runs produced.  Serial
    (``workers <= 1``) and parallel execution reduce each run through the
    same :meth:`RunResult.summary_metrics`, so the aggregates are
    bit-identical for identical specs.
    """
    from repro.runner import Runner

    per_run = Runner(workers=workers, cache_dir=cache_dir,
                     progress=progress).run(specs)
    keys = metrics
    if keys is None:
        keys = sorted({k for result in per_run for k in result})
    return {
        key: MetricStats(key, [result.get(key) for result in per_run])
        for key in keys
    }


def mnp_run_metrics(rows=6, cols=6, n_segments=2, segment_packets=32):
    """An ``experiment`` factory for :func:`replicate`: one standard MNP
    grid run, reduced to its headline numbers."""
    from repro.experiments.active_radio import run_simulation_grid
    from repro.sim.kernel import SECOND

    def experiment(seed):
        run = run_simulation_grid(rows=rows, cols=cols,
                                  n_segments=n_segments,
                                  segment_packets=segment_packets,
                                  seed=seed)
        return {
            "completion_s": run.completion_time_ms / SECOND
            if run.completion_time_ms else None,
            "art_s": run.average_active_radio_s(),
            "collisions": run.collector.collisions,
            "coverage": run.coverage,
        }

    return experiment


def paired_protocol_wins(metric_a, metric_b):
    """Seed-by-seed sign comparison of two MetricStats measured on paired
    channels: fraction of seeds where A's value is strictly below B's."""
    pairs = list(zip(metric_a.values, metric_b.values))
    if not pairs:
        return None
    return sum(1 for a, b in pairs if a < b) / len(pairs)


def protocol_statistics(protocols, seeds, rows=6, cols=6, n_segments=2,
                        segment_packets=32, workers=0, cache_dir=None,
                        progress=None):
    """Replicated comparison: {protocol: {metric: MetricStats}}.

    With ``workers >= 2`` the full (protocol x seed) matrix fans out over
    a process fleet (see :mod:`repro.runner`) instead of looping
    serially; ``cache_dir`` makes repeated invocations incremental.
    """
    from repro.runner import Runner

    specs = []
    for protocol in protocols:
        specs.extend(replication_specs(
            seeds, rows=rows, cols=cols, n_segments=n_segments,
            segment_packets=segment_packets, protocol=protocol,
        ))
    per_run = Runner(workers=workers, cache_dir=cache_dir,
                     progress=progress).run(specs)
    stats = {}
    for p_index, protocol in enumerate(protocols):
        chunk = per_run[p_index * len(seeds):(p_index + 1) * len(seeds)]
        stats[protocol] = {
            key: MetricStats(key, [result.get(key) for result in chunk])
            for key in HEADLINE_METRICS
        }
    return stats


def statistics_report(stats, metrics=("completion_s", "art_s",
                                      "collisions")):
    rows = []
    for protocol, per_metric in stats.items():
        for metric in metrics:
            ms = per_metric[metric]
            if ms.mean is None:
                rows.append([protocol, metric, "-", "-", "-", ms.n])
            else:
                rows.append([
                    protocol, metric, f"{ms.mean:.1f}", f"{ms.stdev:.1f}",
                    f"[{ms.min:.1f}, {ms.max:.1f}]", ms.n,
                ])
    return format_table(
        ["protocol", "metric", "mean", "stdev", "range", "seeds"],
        rows, title="Replicated results (mean over seeds)",
    )
