"""The coded-dissemination sweep: messages/energy vs link loss.

Runs one (protocol, loss) cell per :class:`~repro.runner.RunSpec` so the
runner's content-hash cache and worker fleet apply, and exposes
:func:`run_coding_matrix` for driving the full grid from the CLI
(``python -m repro sweep --experiment coding``).

The experiment pins its own geometry (a dense 5x5 grid, two 24-packet
segments) rather than consulting the scale registry: the question it
answers -- "where does coding beat per-packet retransmission?" -- is a
function of loss rate and neighborhood density, not of deployment size,
and pinning keeps every recorded number comparable across machines.

Loss is expressed as a *data-frame* loss percentage: the per-bit error
rate handed to :class:`~repro.net.loss_models.UniformLossModel` is
back-computed so a full-size 63-byte data frame (45 B coded/uncoded data
packet + 18 B PHY overhead) survives with probability ``1 - loss``.
Smaller control frames see proportionally better odds, exactly as on a
real radio.
"""

from repro.core.config import MNPConfig
from repro.experiments.common import Deployment
from repro.net.loss_models import PerfectLossModel, UniformLossModel
from repro.net.topology import Topology
from repro.radio.propagation import PropagationModel
from repro.core.segments import CodeImage
from repro.sim.kernel import MINUTE

#: Loss percentages of the recorded sweep (EXPERIMENTS.md).
LOSS_PCTS = (0, 10, 20, 30, 40, 50)

#: Protocols of the recorded sweep: each stock protocol next to its
#: coded counterpart.
CODING_PROTOCOLS = ("mnp", "coded_mnp", "deluge", "coded_deluge")

#: Reference frame for the loss <-> BER conversion: a 45-byte data
#: packet plus the channel's 18-byte PHY overhead.
REF_FRAME_BYTES = 63


def loss_to_ber(loss_pct, frame_bytes=REF_FRAME_BYTES):
    """Per-bit error rate at which a ``frame_bytes`` frame is lost with
    probability ``loss_pct``/100."""
    p = loss_pct / 100.0
    if p <= 0:
        return 0.0
    if not p < 1:
        raise ValueError("loss_pct must be < 100")
    return 1.0 - (1.0 - p) ** (1.0 / (8.0 * frame_bytes))


def run_coding_cell(protocol, loss_pct, seed, rows=5, cols=5,
                    spacing_ft=10.0, n_segments=2, segment_packets=24,
                    deadline_min=480.0, config=None):
    """One cell of the sweep; returns ``summary_metrics()`` plus the
    cell coordinates."""
    topo = Topology.grid(rows, cols, spacing_ft)
    image = CodeImage.random(
        program_id=1, n_segments=n_segments,
        segment_packets=segment_packets, seed=seed,
    )
    loss_model = PerfectLossModel() if loss_pct == 0 \
        else UniformLossModel(loss_to_ber(loss_pct))
    protocol_config = None
    if protocol in ("mnp", "coded_mnp"):
        protocol_config = MNPConfig(**config) if config else MNPConfig()
    deployment = Deployment(
        topo, image=image, protocol=protocol,
        protocol_config=protocol_config, seed=seed,
        propagation=PropagationModel(25.0, 3.0),
        loss_model=loss_model,
    )
    result = deployment.run_to_completion(deadline_ms=deadline_min * MINUTE)
    metrics = result.summary_metrics()
    metrics["loss_pct"] = loss_pct
    metrics["protocol"] = protocol
    return metrics


def coding_experiment(spec):
    """Runner executor (``experiment="coding"``).

    ``spec.overrides`` may carry ``loss_pct`` (default 0), ``rows``,
    ``cols``, ``spacing_ft``, ``n_segments``, ``segment_packets``,
    ``deadline_min``, and (for the MNP family) a ``config`` dict of
    :class:`MNPConfig` keyword arguments.
    """
    ov = spec.overrides
    return run_coding_cell(
        spec.protocol,
        ov.get("loss_pct", 0),
        spec.seed,
        rows=ov.get("rows", 5),
        cols=ov.get("cols", 5),
        spacing_ft=ov.get("spacing_ft", 10.0),
        n_segments=ov.get("n_segments", 2),
        segment_packets=ov.get("segment_packets", 24),
        deadline_min=ov.get("deadline_min", 480.0),
        config=ov.get("config"),
    )


def run_coding_matrix(protocols=CODING_PROTOCOLS, loss_pcts=LOSS_PCTS,
                      seeds=(0,), runner=None, scale="default", **overrides):
    """Drive the whole (protocol x loss x seed) grid through a runner.

    Returns ``{(protocol, loss_pct): [metrics per seed]}``.
    """
    from repro.runner import Runner, RunSpec

    runner = runner or Runner()
    specs = [
        RunSpec("coding", protocol=protocol, scale=scale, seed=seed,
                loss_pct=loss_pct, **overrides)
        for protocol in protocols
        for loss_pct in loss_pcts
        for seed in seeds
    ]
    results = runner.run(specs)
    matrix = {}
    for spec, metrics in zip(specs, results):
        cell = (spec.protocol, spec.overrides.get("loss_pct", 0))
        matrix.setdefault(cell, []).append(metrics)
    return matrix
