"""Parallel experiment orchestration with content-addressed result caching.

The paper's evaluation (20x20 TOSSIM grids, Figs. 5-13) is reproduced by
simulation runs that each cost seconds to minutes of wall clock.  This
module turns collections of such runs -- seed ensembles, size/density/
power sweeps -- into *specs* that can be executed in parallel across
worker processes and cached by content hash, so repeated invocations are
incremental and interrupted sweeps resume where they stopped.

Three pieces:

* :class:`RunSpec` -- a declarative description of one run (experiment
  kind, protocol, scale, seed, parameter overrides).  Specs hash to a
  stable cache key; two specs with the same key produce bit-identical
  metrics because every simulation is a pure function of its spec.
* :class:`Runner` -- executes a list of specs.  Cached specs are loaded
  from JSON manifests under the cache directory; uncached specs run
  either in-process (``workers <= 1``) or on a
  :class:`~concurrent.futures.ProcessPoolExecutor` fleet.  Each
  completed run persists its manifest immediately, and progress /
  heartbeat lines are streamed through a callback.
* the experiment registry -- maps ``spec.experiment`` names to functions
  ``fn(spec) -> dict`` living in :mod:`repro.experiments`; entries are
  import paths so worker processes resolve them regardless of start
  method.

Determinism contract: the serial and parallel paths execute the *same*
experiment function on the *same* spec, so they produce identical metric
dicts -- this is what makes the cache sound (see
``tests/test_runner.py``).

Integrity contract: manifests carry a ``metrics_sha256`` digest over the
canonical metrics JSON, and :meth:`Runner.load_cached` recomputes it on
every load -- a truncated, bit-flipped, or hand-edited cache entry is a
miss (the spec re-executes), never a silently served wrong answer.

Sharing contract: identical specs appearing more than once in a single
:meth:`Runner.run` batch execute once; every duplicate index subscribes
to the one execution and receives its own deep copy of the metrics.
This is what lets multi-tenant callers (the :mod:`repro.service` control
plane, conformance fan-outs) submit overlapping work without paying for
it twice.
"""

import copy
import hashlib
import importlib
import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

#: Bump when the meaning of cached metrics changes incompatibly.
CACHE_VERSION = 1

#: Default manifest location (relative to the working directory).
DEFAULT_CACHE_DIR = os.path.join("benchmarks", "cache")

#: experiment name -> "module:function"; the function takes a RunSpec and
#: returns a JSON-ready metrics dict.  Import paths (rather than function
#: objects) keep specs picklable and workers start-method agnostic.
EXPERIMENTS = {
    "grid": "repro.experiments.common:grid_experiment",
    "density": "repro.experiments.density:density_experiment",
    "power": "repro.experiments.power_sweep:power_experiment",
    "chaos": "repro.experiments.chaos:chaos_experiment",
    "adversary": "repro.experiments.adversary:adversary_experiment",
    "conformance": "repro.conformance.execute:conformance_experiment",
    "sharded": "repro.experiments.sharded:sharded_experiment",
    "coding": "repro.experiments.coding:coding_experiment",
    "probe": "repro.experiments.probe:probe_experiment",
}


def metrics_digest(metrics):
    """SHA-256 over the canonical JSON of a metrics dict.

    Stored in every manifest and recomputed on load, so cache entries
    whose metrics bytes were damaged after the fact are detected.  The
    canonical form survives a JSON round-trip (tuples become lists and
    int keys become strings *before* hashing), so the digest of the
    freshly computed dict equals the digest of its parsed manifest.
    """
    canonical = json.dumps(metrics, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(
        json.dumps(json.loads(canonical), sort_keys=True,
                   separators=(",", ":")).encode()
    ).hexdigest()


def register_experiment(name, import_path):
    """Register an experiment executor as ``"module:function"``."""
    if ":" not in import_path:
        raise ValueError(f"import path {import_path!r} must be module:function")
    EXPERIMENTS[name] = import_path


def resolve_experiment(name):
    """Import and return the executor function for ``name``."""
    try:
        path = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    module_name, _, fn_name = path.partition(":")
    return getattr(importlib.import_module(module_name), fn_name)


class RunSpec:
    """One experiment run, declaratively: hashable, picklable, JSON-able.

    Parameters
    ----------
    experiment:
        Key into :data:`EXPERIMENTS` (``"grid"``, ``"density"``, ...).
    protocol:
        Protocol name as known to :data:`repro.experiments.common.PROTOCOLS`.
    scale:
        Scale name (``"smoke"``/``"default"``/``"paper"``); resolved
        explicitly so worker processes never consult ``REPRO_SCALE``.
        Defaults to the currently selected scale at spec *creation* time.
    seed:
        Master seed for the run.
    overrides:
        JSON-scalar keyword overrides understood by the experiment
        executor (e.g. ``rows=6, segment_packets=32``).  ``None`` values
        are dropped so "use the scale default" never perturbs the hash.
    """

    __slots__ = ("experiment", "protocol", "scale", "seed", "overrides")

    def __init__(self, experiment="grid", protocol="mnp", scale=None,
                 seed=0, **overrides):
        if scale is None:
            from repro.experiments.scale import current_scale

            scale = current_scale().name
        self.experiment = experiment
        self.protocol = protocol
        self.scale = scale
        self.seed = seed
        clean = {}
        for key in sorted(overrides):
            value = overrides[key]
            if value is None:
                continue
            if not isinstance(value, (str, int, float, bool, dict, list, tuple)):
                raise TypeError(
                    f"override {key}={value!r} is not JSON-representable"
                )
            clean[key] = value
        self.overrides = clean

    # ------------------------------------------------------------------
    def to_dict(self):
        return {
            "experiment": self.experiment,
            "protocol": self.protocol,
            "scale": self.scale,
            "seed": self.seed,
            "overrides": self.overrides,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            experiment=data["experiment"], protocol=data["protocol"],
            scale=data["scale"], seed=data["seed"], **data["overrides"]
        )

    def cache_key(self):
        """Stable content hash of this spec (hex, 20 chars)."""
        payload = {"version": CACHE_VERSION}
        payload.update(self.to_dict())
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:20]

    def label(self):
        extras = " ".join(f"{k}={v}" for k, v in self.overrides.items())
        return (f"{self.experiment}/{self.protocol} scale={self.scale} "
                f"seed={self.seed}" + (f" {extras}" if extras else ""))

    def __eq__(self, other):
        return (isinstance(other, RunSpec)
                and self.to_dict() == other.to_dict())

    def __hash__(self):
        return hash(self.cache_key())

    def __repr__(self):
        return f"<RunSpec {self.label()}>"


def execute_spec(spec):
    """Run one spec in this process and return its metrics dict."""
    return resolve_experiment(spec.experiment)(spec)


def _pool_worker(spec_dict):
    """Module-level worker entry point (picklable for the process pool)."""
    start = time.perf_counter()
    metrics = execute_spec(RunSpec.from_dict(spec_dict))
    return metrics, time.perf_counter() - start


class RunnerStats:
    """Counters for one :meth:`Runner.run` invocation."""

    def __init__(self):
        self.hits = 0
        self.misses = 0
        #: duplicate specs within one batch that subscribed to another
        #: index's execution instead of running themselves
        self.shared = 0
        self.elapsed_s = 0.0

    def __repr__(self):
        return (f"<RunnerStats hits={self.hits} misses={self.misses} "
                f"shared={self.shared} elapsed={self.elapsed_s:.1f}s>")


class Runner:
    """Execute :class:`RunSpec` lists with caching and a process fleet.

    Parameters
    ----------
    workers:
        ``0`` or ``1`` runs specs serially in-process; ``>= 2`` fans out
        over a :class:`ProcessPoolExecutor` of that many workers.
    cache_dir:
        Directory for JSON manifests, or ``None`` to disable caching
        entirely (library callers default to no cache; the CLI points at
        ``benchmarks/cache``).
    progress:
        ``fn(line)`` receiving human-readable progress/heartbeat lines;
        ``None`` silences them.
    heartbeat_s:
        Wall-clock period of "still running" lines while waiting on the
        fleet.
    """

    def __init__(self, workers=0, cache_dir=None, progress=None,
                 heartbeat_s=15.0):
        self.workers = max(0, int(workers))
        self.cache_dir = cache_dir
        self.progress = progress
        self.heartbeat_s = heartbeat_s
        self.stats = RunnerStats()

    # ------------------------------------------------------------------
    # Cache
    # ------------------------------------------------------------------
    def manifest_path(self, spec):
        if self.cache_dir is None:
            return None
        return os.path.join(self.cache_dir, f"{spec.cache_key()}.json")

    def load_cached(self, spec):
        """The cached metrics for ``spec``, or None on miss/corruption.

        A manifest is served only if (a) it parses, (b) its embedded
        spec matches byte-for-byte (hash collision / stale key), and
        (c) its ``metrics_sha256`` digest matches the stored metrics --
        so truncation or bit flips anywhere in the entry downgrade it to
        a miss and the spec re-executes.  Pre-digest manifests (no
        ``metrics_sha256`` field) are likewise re-executed rather than
        trusted.
        """
        path = self.manifest_path(spec)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(manifest, dict):
            return None
        if manifest.get("spec") != spec.to_dict():  # hash collision/stale
            return None
        metrics = manifest.get("metrics")
        if metrics is None:
            return None
        try:
            if manifest.get("metrics_sha256") != metrics_digest(metrics):
                return None
        except (TypeError, ValueError):
            return None
        return metrics

    def store(self, spec, metrics, elapsed_s):
        """Atomically persist one run's manifest; no-op when uncached."""
        path = self.manifest_path(spec)
        if path is None:
            return None
        os.makedirs(self.cache_dir, exist_ok=True)
        manifest = {
            "cache_version": CACHE_VERSION,
            "key": spec.cache_key(),
            "spec": spec.to_dict(),
            "elapsed_s": elapsed_s,
            "metrics": metrics,
            "metrics_sha256": metrics_digest(metrics),
        }
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
        return path

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _say(self, line):
        if self.progress is not None:
            self.progress(line)

    def run_one(self, spec):
        """Execute (or load) a single spec; returns its metrics dict."""
        return self.run([spec])[0]

    def run(self, specs):
        """Execute every spec, returning metrics dicts in spec order.

        Cached specs never re-run.  Manifests are written the moment each
        run finishes, so an interrupted sweep is resumable: re-invoking
        with the same specs only executes what is still missing.
        """
        specs = list(specs)
        t0 = time.perf_counter()
        results = [None] * len(specs)
        pending = []   # (leader index, spec) -- one entry per unique key
        leaders = {}   # cache key -> leader index
        fan_in = {}    # leader index -> [duplicate indices]
        for i, spec in enumerate(specs):
            cached = self.load_cached(spec)
            if cached is not None:
                results[i] = cached
                self.stats.hits += 1
                self._say(f"[runner] cache hit  {spec.label()}")
                continue
            key = spec.cache_key()
            if key in leaders:
                # Identical spec already queued in this batch: subscribe
                # this index to the leader's execution instead of paying
                # for a second run.
                fan_in.setdefault(leaders[key], []).append(i)
                self.stats.shared += 1
                self._say(f"[runner] shared     {spec.label()}")
                continue
            leaders[key] = i
            pending.append((i, spec))
        self.stats.misses += len(pending)
        if pending:
            n = len(pending)
            if self.workers >= 2:
                self._say(f"[runner] {n} uncached spec(s) across "
                          f"{min(self.workers, n)} workers")
                self._run_parallel(pending, results)
            else:
                self._say(f"[runner] {n} uncached spec(s), serial")
                self._run_serial(pending, results)
        for leader, subscribers in fan_in.items():
            for i in subscribers:
                results[i] = copy.deepcopy(results[leader])
        self.stats.elapsed_s += time.perf_counter() - t0
        return results

    def _finish(self, index, spec, metrics, elapsed_s, done, total):
        self.store(spec, metrics, elapsed_s)
        self._say(f"[runner] {done}/{total} done  {spec.label()}  "
                  f"({elapsed_s:.1f}s)")
        return metrics

    def _run_serial(self, pending, results):
        total = len(pending)
        for done, (i, spec) in enumerate(pending, start=1):
            start = time.perf_counter()
            metrics = execute_spec(spec)
            results[i] = self._finish(i, spec, metrics,
                                      time.perf_counter() - start,
                                      done, total)

    def _run_parallel(self, pending, results):
        total = len(pending)
        done = 0
        with ProcessPoolExecutor(
            max_workers=min(self.workers, total)
        ) as pool:
            futures = {
                pool.submit(_pool_worker, spec.to_dict()): (i, spec)
                for i, spec in pending
            }
            waiting = set(futures)
            started = time.perf_counter()
            while waiting:
                finished, waiting = wait(
                    waiting, timeout=self.heartbeat_s,
                    return_when=FIRST_COMPLETED,
                )
                if not finished:
                    self._say(
                        f"[runner] heartbeat: {done}/{total} done, "
                        f"{len(waiting)} running/queued, "
                        f"{time.perf_counter() - started:.0f}s elapsed"
                    )
                    continue
                for future in finished:
                    i, spec = futures[future]
                    metrics, elapsed_s = future.result()
                    done += 1
                    results[i] = self._finish(i, spec, metrics, elapsed_s,
                                              done, total)


def sweep(specs, workers=0, cache_dir=None, progress=None):
    """Convenience: run ``specs`` on a fresh :class:`Runner`.

    Returns ``(results, runner)`` so callers can inspect cache stats.
    """
    runner = Runner(workers=workers, cache_dir=cache_dir, progress=progress)
    return runner.run(specs), runner
