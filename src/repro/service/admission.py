"""Bounded admission for the dissemination service.

Two limits, both enforced *before* any simulation work happens:

* **worker pool** -- at most ``workers`` jobs execute concurrently;
  admitted jobs queue on an :class:`asyncio.Semaphore` in submission
  order.
* **queue depth** -- at most ``queue_limit`` jobs may be waiting for a
  worker slot; beyond that, submissions are refused outright (the HTTP
  layer maps the refusal to ``503 queue-full``), so a flood of unique
  work degrades into fast rejections instead of unbounded memory growth.

A third knob, ``job_timeout_s``, bounds how long one job may *run*; the
job store uses it via :meth:`AdmissionControl.run_bounded` and marks
overruns failed (their result is discarded, never cached).

Defaults come from ``REPRO_SERVICE_WORKERS``, ``REPRO_SERVICE_QUEUE``,
and ``REPRO_SERVICE_TIMEOUT_S``.
"""

import asyncio
import os

#: Fallbacks when neither constructor args nor env vars say otherwise.
DEFAULT_WORKERS = 2
DEFAULT_QUEUE_LIMIT = 256


def _env_int(name, fallback):
    raw = os.environ.get(name, "").strip()
    if not raw:
        return fallback
    try:
        return int(raw)
    except ValueError:
        return fallback


def default_workers():
    """Worker-pool width: ``REPRO_SERVICE_WORKERS`` or 2."""
    return max(1, _env_int("REPRO_SERVICE_WORKERS", DEFAULT_WORKERS))


def default_queue_limit():
    """Admission queue depth: ``REPRO_SERVICE_QUEUE`` or 256."""
    return max(1, _env_int("REPRO_SERVICE_QUEUE", DEFAULT_QUEUE_LIMIT))


def default_job_timeout_s():
    """Per-job wall-clock bound: ``REPRO_SERVICE_TIMEOUT_S`` or None."""
    raw = os.environ.get("REPRO_SERVICE_TIMEOUT_S", "").strip()
    if not raw:
        return None
    try:
        timeout = float(raw)
    except ValueError:
        return None
    return timeout if timeout > 0 else None


class QueueFull(Exception):
    """Raised when the admission queue is at capacity."""


class JobTimeout(Exception):
    """Raised inside the store when a job overruns its wall-clock bound."""


class AdmissionControl:
    """Semaphore-bounded worker pool with a hard queue-depth cap."""

    def __init__(self, workers=None, queue_limit=None, job_timeout_s=None):
        self.workers = workers if workers is not None else default_workers()
        self.workers = max(1, int(self.workers))
        self.queue_limit = queue_limit if queue_limit is not None \
            else default_queue_limit()
        self.job_timeout_s = job_timeout_s
        self._slots = asyncio.Semaphore(self.workers)
        #: jobs admitted but not yet holding a worker slot
        self.waiting = 0
        #: jobs currently holding a worker slot
        self.running = 0

    def admit(self):
        """Reserve a queue position or raise :class:`QueueFull`.

        Must be called (synchronously, before any await) at submission
        time so over-capacity submissions are refused immediately.
        """
        if self.waiting >= self.queue_limit:
            raise QueueFull(
                f"admission queue at capacity ({self.queue_limit})")
        self.waiting += 1

    def retract(self):
        """Give back a queue position reserved by :meth:`admit`."""
        self.waiting = max(0, self.waiting - 1)

    async def __aenter__(self):
        await self._slots.acquire()
        self.waiting = max(0, self.waiting - 1)
        self.running += 1
        return self

    async def __aexit__(self, *exc):
        self.running -= 1
        self._slots.release()
        return False

    async def run_bounded(self, coro):
        """Await ``coro`` under the per-job timeout (if configured)."""
        if self.job_timeout_s is None:
            return await coro
        try:
            return await asyncio.wait_for(coro, timeout=self.job_timeout_s)
        except asyncio.TimeoutError:
            raise JobTimeout(
                f"job exceeded {self.job_timeout_s:.1f}s") from None
