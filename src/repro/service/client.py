"""Asyncio client for the dissemination service.

One :class:`ServiceClient` holds one keep-alive HTTP/1.1 connection and
reconnects transparently if the server hangs up (the server closes
connections after protocol-level errors and on shutdown).  The client is
deliberately symmetrical with the server: stdlib-only, JSON bodies,
content-length framing.

Typical round trip::

    client = ServiceClient.from_url("http://127.0.0.1:8750")
    submitted = await client.submit({"experiment": "probe", "seed": 3})
    record = await client.wait(submitted["job"])
    result = await client.result(submitted["job"])
    await client.close()
"""

import asyncio
import json
from urllib.parse import urlsplit


class ServiceError(Exception):
    """A structured error response from the service."""

    def __init__(self, status, payload):
        self.status = status
        self.payload = payload if isinstance(payload, dict) else {}
        error = self.payload.get("error", "error")
        detail = self.payload.get("detail")
        super().__init__(f"HTTP {status}: {error}"
                         + (f" ({detail})" if detail else ""))
        self.error = error


class ServiceClient:
    """Minimal asyncio HTTP/JSON client for :class:`~repro.service.Service`."""

    def __init__(self, host="127.0.0.1", port=8750):
        self.host = host
        self.port = port
        self._reader = None
        self._writer = None

    @classmethod
    def from_url(cls, url):
        parts = urlsplit(url if "//" in url else f"http://{url}")
        return cls(host=parts.hostname or "127.0.0.1",
                   port=parts.port or 8750)

    # ------------------------------------------------------------------
    async def _connect(self):
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port)

    async def close(self):
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def request(self, method, path, body=None):
        """One request/response; returns the decoded JSON payload.

        Raises :class:`ServiceError` on any non-200 response.  Retries
        exactly once on a dead keep-alive connection.
        """
        encoded = b""
        if body is not None:
            encoded = json.dumps(body, sort_keys=True).encode()
        for attempt in (1, 2):
            await self._connect()
            try:
                self._writer.write(
                    f"{method} {path} HTTP/1.1\r\n"
                    f"Host: {self.host}:{self.port}\r\n"
                    f"Content-Type: application/json\r\n"
                    f"Content-Length: {len(encoded)}\r\n"
                    f"\r\n".encode() + encoded
                )
                await self._writer.drain()
                return await self._read_response()
            except (ConnectionError, asyncio.IncompleteReadError):
                await self.close()
                if attempt == 2:
                    raise

    async def _read_response(self):
        head = await self._reader.readuntil(b"\r\n\r\n")
        status_line, *header_lines = head.decode("latin-1").split("\r\n")
        status = int(status_line.split(" ", 2)[1])
        headers = {}
        for line in header_lines:
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0))
        raw = await self._reader.readexactly(length) if length else b"{}"
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            payload = {"error": "unparseable-response"}
        if status != 200:
            raise ServiceError(status, payload)
        return payload

    # ------------------------------------------------------------------
    # Convenience endpoints
    # ------------------------------------------------------------------
    async def health(self):
        return await self.request("GET", "/healthz")

    async def stats(self):
        return await self.request("GET", "/v1/stats")

    async def submit(self, spec, kind="run", **extra):
        """Submit a job; returns ``{"job", "status", "deduped", "kind"}``."""
        payload = {"kind": kind, "spec": spec}
        payload.update(extra)
        return await self.request("POST", "/v1/jobs", payload)

    async def job(self, key):
        return await self.request("GET", f"/v1/jobs/{key}")

    async def jobs(self):
        return await self.request("GET", "/v1/jobs")

    async def events(self, key, since=0, wait=0):
        path = f"/v1/jobs/{key}/events?since={since}"
        if wait:
            path += f"&wait={wait}"
        return await self.request("GET", path)

    async def cancel(self, key):
        return await self.request("POST", f"/v1/jobs/{key}/cancel")

    async def result(self, key):
        return await self.request("GET", f"/v1/jobs/{key}/result")

    async def wait(self, key, timeout_s=120.0):
        """Event-stream until the job is terminal; returns its summary.

        Uses the long-poll events endpoint rather than busy polling, so
        a waiting client costs the server one parked request.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout_s
        seen = 0
        while True:
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise TimeoutError(
                    f"job {key} not terminal within {timeout_s:.1f}s")
            chunk = await self.events(key, since=seen,
                                      wait=min(remaining, 10.0))
            seen += len(chunk["events"])
            if chunk["status"] in ("done", "failed", "cancelled"):
                return await self.job(key)

    async def shutdown(self, drain=True):
        """Ask the service to stop; closes this client's connection."""
        try:
            return await self.request("POST", "/v1/shutdown",
                                      {"drain": drain})
        finally:
            await self.close()
