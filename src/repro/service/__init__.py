"""Dissemination-as-a-service control plane.

MNP itself is pitched as a *service* -- pipelined, multi-tenant
dissemination with contention-aware admission -- and this package gives
the reproduction the same shape at the experiment layer: a long-running
asyncio HTTP/JSON server that accepts :class:`~repro.runner.RunSpec`,
:class:`~repro.conformance.spec.ScenarioSpec`, and sweep-campaign
submissions, deduplicates them multi-tenant through the runner's
content-hash cache (identical submissions from N clients execute once,
with N subscribers), streams per-job progress events from the simulation
:class:`~repro.sim.tracing.Tracer`, and serves manifests on completion.

Pieces:

* :mod:`repro.service.jobs` -- the :class:`JobStore`: dedup, lifecycle,
  progress events, cancellation, drain.
* :mod:`repro.service.admission` -- bounded worker-pool admission with
  per-job timeouts.
* :mod:`repro.service.server` -- the stdlib-asyncio HTTP/1.1 server
  (``python -m repro serve``).
* :mod:`repro.service.client` -- the matching asyncio client.
* :mod:`repro.service.loadgen` -- the deterministic load generator
  (``python -m repro loadgen``) that records ``BENCH_service.json``.

Everything is pure stdlib (``asyncio`` streams); there is no new
dependency.
"""

from repro.service.admission import AdmissionControl
from repro.service.client import ServiceClient
from repro.service.jobs import Job, JobStore
from repro.service.server import Service

__all__ = ["AdmissionControl", "Job", "JobStore", "Service",
           "ServiceClient"]
