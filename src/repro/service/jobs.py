"""Job lifecycle, dedup, and progress streaming for the service.

One :class:`Job` per distinct piece of work, keyed by the same content
hash the runner's disk cache uses (:meth:`repro.runner.RunSpec.cache_key`
for run/scenario jobs, a canonical hash over the child keys for sweep
campaigns).  Submitting a key that is already queued, running, or done
does not create work: the existing job gains a subscriber (``refs``) and
every subscriber observes the same byte-identical result -- this is the
multi-tenant story, N clients asking for the same campaign pay for one
execution.

Lifecycle::

    queued -> running -> done
                      -> failed      (executor raised, or job timeout)
           -> cancelled              (POST /cancel; queued or mid-run)

Cancellation is *cooperative*: the job is marked terminal immediately
and its result, if the simulation thread still produces one, is
discarded -- in particular it is never written to the disk cache, so a
cancelled job can never corrupt or pollute the cache.  A thread-local
tracer tap (:func:`repro.sim.tracing.push_tap`) raises inside the
simulation at the next milestone event, so most cancelled runs also stop
burning CPU early.

Progress events: every status transition appends an event, and the same
tracer tap forwards simulation milestones (``mnp.got_code``,
``boot.install``, ...) with their *virtual* timestamps, so two
executions of the same spec stream identical event sequences.
"""

import asyncio
import functools
import hashlib
import json
import threading

from repro.runner import Runner, execute_spec
from repro.service.admission import JobTimeout, QueueFull  # noqa: F401
from repro.sim import tracing

#: Trace categories forwarded into a job's event stream.  Milestones
#: only -- subscribing to hot categories (radio.tx, ...) would defeat the
#: tracer's unwatched-category fast path and slow every job down.
PROGRESS_CATEGORIES = (
    "proto.got_code", "mnp.got_code",
    "boot.install", "boot.reject",
    "fault.crash", "fault.restart",
)

#: Per-job cap on buffered events; overflow increments ``events_dropped``
#: instead of growing without bound.
MAX_EVENTS = 500


class JobAborted(Exception):
    """Raised by the tracer tap inside a cancelled job's simulation."""


class ServiceDraining(Exception):
    """Raised on submission after graceful shutdown has begun."""


def sweep_key(child_keys):
    """Content hash of a sweep campaign (order-insensitive)."""
    canonical = json.dumps({"kind": "sweep",
                            "children": sorted(child_keys)},
                           sort_keys=True, separators=(",", ":"))
    return "s" + hashlib.sha256(canonical.encode()).hexdigest()[:19]


class Job:
    """One unit of work plus its subscribers and event stream."""

    __slots__ = ("key", "kind", "spec", "payload", "status", "result",
                 "error", "events", "events_dropped", "refs", "cache_hit",
                 "seq", "task", "child_keys", "_flag", "_abort",
                 "_cancelled")

    def __init__(self, key, kind, spec, payload, seq):
        self.key = key
        self.kind = kind            # "run" | "scenario" | "sweep"
        self.spec = spec            # RunSpec (None for sweeps)
        self.payload = payload      # canonical submission dict
        self.status = "queued"
        self.result = None          # deterministic result payload dict
        self.error = None
        self.events = []
        self.events_dropped = 0
        self.refs = 1
        self.cache_hit = False
        self.seq = seq
        self.task = None
        self.child_keys = None      # sweep jobs: keys of child runs
        self._flag = asyncio.Event()
        self._abort = threading.Event()
        self._cancelled = False

    # ------------------------------------------------------------------
    @property
    def terminal(self):
        return self.status in ("done", "failed", "cancelled")

    def pulse(self):
        """Wake every waiter (status change or new event)."""
        flag, self._flag = self._flag, asyncio.Event()
        flag.set()

    async def wait_change(self, timeout=None):
        """Block until the next pulse (or timeout); returns True on pulse."""
        flag = self._flag
        if timeout is None:
            await flag.wait()
            return True
        try:
            await asyncio.wait_for(flag.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    async def wait_terminal(self):
        while not self.terminal:
            await self.wait_change()
        return self.status

    def add_event(self, event_name, **fields):
        if len(self.events) >= MAX_EVENTS:
            self.events_dropped += 1
            return
        event = {"seq": len(self.events), "event": event_name}
        event.update(fields)
        self.events.append(event)
        self.pulse()

    def to_summary(self):
        """JSON-ready status record (no wall-clock fields)."""
        return {
            "key": self.key,
            "kind": self.kind,
            "status": self.status,
            "refs": self.refs,
            "cache_hit": self.cache_hit,
            "events": len(self.events),
            "events_dropped": self.events_dropped,
            "error": self.error,
        }


class JobStore:
    """Dedup, execute, and observe jobs (single event loop, any thread).

    Parameters
    ----------
    admission:
        The :class:`~repro.service.admission.AdmissionControl` bounding
        concurrent executions and queue depth.
    cache_dir:
        Shared manifest directory -- the *same* content-hash cache the
        CLI sweeps use, so service jobs and offline sweeps serve each
        other.  ``None`` disables disk caching (in-store dedup still
        applies).
    progress:
        Optional ``fn(line)`` receiving human-readable lines.
    """

    def __init__(self, admission, cache_dir=None, progress=None):
        self.admission = admission
        self.cache_dir = cache_dir
        self.progress = progress
        self.jobs = {}
        self.draining = False
        self._seq = 0
        self._loop = None
        # Counters (exposed via /v1/stats; loadgen computes its
        # cache-hit ratio from deltas of these).
        self.submissions = 0
        self.dedup_hits = 0
        self.cache_hits = 0
        self.executions = 0

    # ------------------------------------------------------------------
    def _say(self, line):
        if self.progress is not None:
            self.progress(line)

    def _runner(self):
        """A fresh Runner sharing the store's cache directory.

        Runner instances are cheap and stateless apart from counters;
        one per use keeps worker threads free of shared mutable state
        (manifest writes are atomic at the filesystem level).
        """
        return Runner(workers=0, cache_dir=self.cache_dir)

    def stats(self):
        by_status = {"queued": 0, "running": 0, "done": 0, "failed": 0,
                     "cancelled": 0}
        for job in self.jobs.values():
            by_status[job.status] += 1
        return {
            "submissions": self.submissions,
            "dedup_hits": self.dedup_hits,
            "cache_hits": self.cache_hits,
            "executions": self.executions,
            "jobs": by_status,
            "workers": self.admission.workers,
            "queue_limit": self.admission.queue_limit,
            "waiting": self.admission.waiting,
            "running": self.admission.running,
            "draining": self.draining,
        }

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def _register(self, key, kind, spec, payload):
        """Dedup-or-create; returns ``(job, deduped)``."""
        if self.draining:
            raise ServiceDraining("service is draining")
        self.submissions += 1
        existing = self.jobs.get(key)
        if existing is not None and existing.status not in ("failed",
                                                            "cancelled"):
            existing.refs += 1
            self.dedup_hits += 1
            return existing, True
        self._seq += 1
        job = Job(key, kind, spec, payload, self._seq)
        self.jobs[key] = job
        job.add_event("queued", kind=kind)
        return job, False

    def submit_run(self, spec, kind="run", payload=None):
        """Submit one RunSpec; returns ``(job, deduped)``.

        Raises :class:`QueueFull` (admission) or
        :class:`ServiceDraining`; both leave the store untouched apart
        from the submission counter.
        """
        job, deduped = self._register(spec.cache_key(), kind, spec,
                                      payload if payload is not None
                                      else spec.to_dict())
        if not deduped:
            try:
                self.admission.admit()
            except QueueFull:
                del self.jobs[job.key]
                raise
            self._loop = asyncio.get_running_loop()
            job.task = self._loop.create_task(self._run_job(job))
        return job, deduped

    def submit_sweep(self, child_specs, payload):
        """Submit a sweep campaign over ``child_specs``.

        The parent job holds no worker slot; it subscribes to one child
        job per unique child spec (children dedup against *everything*
        in the store, including other tenants' runs) and completes when
        they all do.
        """
        child_keys = [spec.cache_key() for spec in child_specs]
        job, deduped = self._register(sweep_key(child_keys), "sweep",
                                      None, payload)
        if not deduped:
            job.child_keys = child_keys
            self._loop = asyncio.get_running_loop()
            job.task = self._loop.create_task(
                self._run_sweep(job, list(child_specs)))
        return job, deduped

    # ------------------------------------------------------------------
    # Cancellation / drain
    # ------------------------------------------------------------------
    def cancel(self, key):
        """Cancel a job; returns True if it was non-terminal.

        The job is terminal immediately; any in-flight simulation result
        is discarded and never cached.
        """
        job = self.jobs.get(key)
        if job is None or job.terminal:
            return False
        job._cancelled = True
        job._abort.set()
        self._finalize(job, "cancelled", error="cancelled by client")
        if job.kind == "sweep" and job.child_keys:
            for child_key in job.child_keys:
                child = self.jobs.get(child_key)
                if child is not None and not child.terminal:
                    child.refs -= 1
                    if child.refs <= 0:
                        self.cancel(child_key)
        return True

    async def drain(self):
        """Stop accepting work, then wait for every job task to finish.

        In-flight and queued jobs run to completion (their manifests are
        cached as usual); only *new* submissions are refused.
        """
        self.draining = True
        tasks = [job.task for job in list(self.jobs.values())
                 if job.task is not None]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _finalize(self, job, status, error=None):
        if job.terminal:
            return
        job.status = status
        job.error = error
        job.add_event(status, **({"error": error} if error else {}))
        job.pulse()
        self._say(f"[service] {status:<9} {job.kind} {job.key}"
                  + (f"  ({error})" if error else ""))

    def _result_payload(self, job, metrics):
        return {
            "key": job.key,
            "kind": job.kind,
            "spec": job.payload,
            "metrics": metrics,
        }

    async def _run_job(self, job):
        try:
            async with self.admission:
                if job.terminal:        # cancelled while queued
                    return
                job.status = "running"
                job.add_event("running")
                runner = self._runner()
                cached = await asyncio.to_thread(runner.load_cached,
                                                 job.spec)
                if job.terminal:
                    return
                if cached is not None:
                    self.cache_hits += 1
                    job.cache_hit = True
                    job.result = self._result_payload(job, cached)
                    self._finalize(job, "done")
                    return
                self.executions += 1
                metrics = await self.admission.run_bounded(
                    asyncio.to_thread(self._execute, job))
                if job.terminal:        # cancelled mid-run: discard
                    return
                await asyncio.to_thread(runner.store, job.spec, metrics,
                                        0.0)
                job.result = self._result_payload(job, metrics)
                self._finalize(job, "done")
        except JobTimeout as exc:
            job._abort.set()
            self._finalize(job, "failed", error=str(exc))
        except JobAborted:
            self._finalize(job, "cancelled", error="cancelled by client")
        except asyncio.CancelledError:
            self._finalize(job, "cancelled", error="service stopped")
            raise
        except Exception as exc:        # executor raised: a failed job,
            self._finalize(job, "failed",  # never a dead accept loop
                           error=f"{type(exc).__name__}: {exc}")

    def _execute(self, job):
        """Worker-thread body: run the spec with a progress tap."""
        loop = self._loop

        def tap(record):
            if job._abort.is_set():
                raise JobAborted()
            fields = {
                k: v for k, v in record.fields.items()
                if isinstance(v, (str, int, float, bool, type(None)))
            }
            loop.call_soon_threadsafe(functools.partial(
                job.add_event, "trace", category=record.category,
                t_ms=record.time, **fields))

        tracing.push_tap(tap, categories=PROGRESS_CATEGORIES)
        try:
            return execute_spec(job.spec)
        finally:
            tracing.pop_tap(tap)

    async def _run_sweep(self, job, child_specs):
        try:
            children = []
            for spec in child_specs:
                child, _ = self.submit_run(spec)
                children.append(child)
            job.status = "running"
            job.add_event("running", children=len(children))
            for child in children:
                status = await child.wait_terminal()
                if job.terminal:
                    return
                job.add_event("child", key=child.key, status=status)
            if job.terminal:
                return
            bad = [c for c in children if c.status != "done"]
            if bad:
                self._finalize(
                    job, "failed",
                    error=f"{len(bad)} child job(s) did not complete "
                          f"(first: {bad[0].key} {bad[0].status})")
                return
            job.result = {
                "key": job.key,
                "kind": "sweep",
                "spec": job.payload,
                "runs": [
                    {"key": c.key, "spec": c.payload,
                     "metrics": c.result["metrics"]}
                    for c in children
                ],
            }
            self._finalize(job, "done")
        except (QueueFull, ServiceDraining) as exc:
            self._finalize(job, "failed", error=str(exc))
        except asyncio.CancelledError:
            self._finalize(job, "cancelled", error="service stopped")
            raise
        except Exception as exc:
            self._finalize(job, "failed",
                           error=f"{type(exc).__name__}: {exc}")
