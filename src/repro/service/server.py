"""The dissemination service's HTTP/1.1 front end (stdlib asyncio only).

A deliberately small, hand-rolled HTTP server over ``asyncio`` streams --
no new dependencies -- speaking JSON on every endpoint:

====== =============================== =================================
method path                            meaning
====== =============================== =================================
GET    ``/healthz``                    liveness + store stats
GET    ``/v1/stats``                   same stats, stable shape
POST   ``/v1/jobs``                    submit ``{"kind", "spec"}``
GET    ``/v1/jobs``                    job summaries (submission order)
GET    ``/v1/jobs/<key>``              one job's status record
GET    ``/v1/jobs/<key>/result``       deterministic result payload
GET    ``/v1/jobs/<key>/events``       progress events (``?since=N``,
                                       ``?wait=SECONDS`` long-poll)
POST   ``/v1/jobs/<key>/cancel``       cancel (queued or mid-run)
POST   ``/v1/shutdown``                ``{"drain": true}`` = graceful
====== =============================== =================================

Every error -- truncated body, malformed JSON, unknown experiment,
oversized spec, full queue, draining -- returns a structured
``{"error": ..., "detail": ...}`` body with an appropriate status code
and *never* wedges the accept loop: the offending connection is closed,
the listener keeps accepting.

Submission kinds:

* ``run`` -- a :class:`repro.runner.RunSpec` dict (``experiment``,
  ``protocol``, ``scale``, ``seed``, ``overrides``); the experiment must
  be registered.
* ``scenario`` -- a :class:`repro.conformance.spec.ScenarioSpec` dict
  (plus optional top-level ``protocol``), executed through the
  conformance executor.
* ``sweep`` -- a campaign: the run shape but with ``seeds`` (a list)
  instead of ``seed``; fans out one child run job per seed and completes
  when they all do.  Children dedup against every other tenant's jobs.

Body size is bounded by ``REPRO_SERVICE_MAX_BODY`` (default 1 MiB).
"""

import asyncio
import json
import os
from urllib.parse import parse_qs, urlsplit

from repro.runner import EXPERIMENTS, RunSpec
from repro.service.admission import AdmissionControl, QueueFull
from repro.service.jobs import JobStore, ServiceDraining

#: Upper bound on request bodies (and a related stream buffer limit).
DEFAULT_MAX_BODY = 1 << 20

#: Seconds a started body may dribble before the request is rejected.
DEFAULT_BODY_TIMEOUT_S = 5.0

#: Hard cap on sweep fan-out per submission.
MAX_SWEEP_SEEDS = 256

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 408: "Request Timeout",
            409: "Conflict", 410: "Gone", 413: "Payload Too Large",
            431: "Request Header Fields Too Large",
            500: "Internal Server Error", 503: "Service Unavailable"}


def default_max_body():
    raw = os.environ.get("REPRO_SERVICE_MAX_BODY", "").strip()
    try:
        return max(1024, int(raw)) if raw else DEFAULT_MAX_BODY
    except ValueError:
        return DEFAULT_MAX_BODY


class _HttpError(Exception):
    """Maps straight to a structured JSON error response."""

    def __init__(self, status, error, detail=None, close=False):
        super().__init__(error)
        self.status = status
        self.error = error
        self.detail = detail
        self.close = close  # connection state unknown: hang up after

    def body(self):
        payload = {"error": self.error}
        if self.detail is not None:
            payload["detail"] = self.detail
        return payload


class Service:
    """The long-running control plane: job store + HTTP listener."""

    def __init__(self, workers=None, cache_dir=None, queue_limit=None,
                 job_timeout_s=None, max_body=None,
                 body_timeout_s=DEFAULT_BODY_TIMEOUT_S, progress=None):
        self.admission = AdmissionControl(workers=workers,
                                          queue_limit=queue_limit,
                                          job_timeout_s=job_timeout_s)
        self.store = JobStore(self.admission, cache_dir=cache_dir,
                              progress=progress)
        self.max_body = max_body if max_body is not None \
            else default_max_body()
        self.body_timeout_s = body_timeout_s
        self.progress = progress
        self._server = None
        self._connections = set()
        self._conn_tasks = set()
        self._shutdown = asyncio.Event()
        self.host = None
        self.port = None

    # ------------------------------------------------------------------
    def _say(self, line):
        if self.progress is not None:
            self.progress(line)

    async def start(self, host="127.0.0.1", port=0):
        """Bind and start accepting; returns ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle_connection, host, port,
            limit=self.max_body + 65536,
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        self._say(f"[service] listening on http://{self.host}:{self.port}")
        return self.host, self.port

    async def serve_forever(self):
        """Block until :meth:`stop` (or a drain via POST /v1/shutdown)."""
        await self._shutdown.wait()

    async def stop(self, drain=True):
        """Shut down; ``drain=True`` finishes in-flight jobs first."""
        if self._server is not None:
            self._server.close()          # stop accepting new connections
        if drain:
            await self.store.drain()
        # Hang up idle keep-alive connections so wait_closed() cannot
        # stall on a client that never disconnects.
        for writer in list(self._connections):
            writer.close()
        here = asyncio.current_task()
        pending = [t for t in self._conn_tasks if t is not here]
        if pending:
            _done, stuck = await asyncio.wait(pending, timeout=5.0)
            for task in stuck:       # e.g. parked in a long-poll
                task.cancel()
            if stuck:
                await asyncio.gather(*stuck, return_exceptions=True)
        self._conn_tasks.clear()
        if self._server is not None:
            await self._server.wait_closed()
        self._shutdown.set()
        self._say("[service] stopped")

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer):
        self._connections.add(writer)
        self._conn_tasks.add(asyncio.current_task())
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, query, body = request
                try:
                    status, payload = await self._route(method, path,
                                                        query, body)
                except _HttpError as exc:
                    await self._respond(writer, exc.status, exc.body())
                    if exc.close:
                        break
                    continue
                except Exception as exc:  # route bug: report, keep serving
                    await self._respond(writer, 500, {
                        "error": "internal",
                        "detail": f"{type(exc).__name__}: {exc}",
                    })
                    continue
                await self._respond(writer, status, payload)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except _HttpError as exc:   # malformed head/body: answer + hang up
            try:
                await self._respond(writer, exc.status, exc.body())
            except ConnectionError:
                pass
        finally:
            self._connections.discard(writer)
            self._conn_tasks.discard(asyncio.current_task())
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader):
        """One request, or None on clean EOF.  Raises _HttpError."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None           # clean close between requests
            raise _HttpError(400, "truncated-request",
                             "connection closed inside the request head",
                             close=True) from None
        except asyncio.LimitOverrunError:
            raise _HttpError(431, "oversized-head",
                             "request head exceeds the buffer limit",
                             close=True) from None
        try:
            head_text = head.decode("latin-1")
            request_line, *header_lines = head_text.split("\r\n")
            method, target, version = request_line.split(" ", 2)
            if not version.startswith("HTTP/") or not method.isalpha():
                raise ValueError
        except ValueError:
            raise _HttpError(400, "malformed-request-line",
                             "expected 'METHOD PATH HTTP/1.1'",
                             close=True) from None
        headers = {}
        for line in header_lines:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise _HttpError(400, "malformed-header", line[:80],
                                 close=True)
            headers[name.strip().lower()] = value.strip()
        parts = urlsplit(target)
        query = {k: v[-1] for k, v in parse_qs(parts.query).items()}

        body = b""
        raw_length = headers.get("content-length")
        if raw_length is not None:
            try:
                length = int(raw_length)
                if length < 0:
                    raise ValueError
            except ValueError:
                raise _HttpError(400, "malformed-content-length",
                                 raw_length[:40], close=True) from None
            if length > self.max_body:
                raise _HttpError(413, "oversized-body",
                                 f"{length} bytes > limit {self.max_body}",
                                 close=True)
            if length:
                try:
                    body = await asyncio.wait_for(
                        reader.readexactly(length),
                        timeout=self.body_timeout_s)
                except asyncio.IncompleteReadError as exc:
                    raise _HttpError(
                        400, "truncated-body",
                        f"Content-Length {length}, got "
                        f"{len(exc.partial)} bytes", close=True) from None
                except asyncio.TimeoutError:
                    raise _HttpError(
                        408, "body-timeout",
                        f"body not received within "
                        f"{self.body_timeout_s:.1f}s", close=True) \
                        from None
        return method.upper(), parts.path, query, body

    async def _respond(self, writer, status, payload):
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        reason = _REASONS.get(status, "Unknown")
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"\r\n".encode() + body
        )
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(self, method, path, query, body):
        if path == "/healthz" and method == "GET":
            return 200, {"ok": True, "stats": self.store.stats()}
        if path == "/v1/stats" and method == "GET":
            return 200, self.store.stats()
        if path == "/v1/jobs":
            if method == "POST":
                return self._submit(self._parse_json(body))
            if method == "GET":
                jobs = sorted(self.store.jobs.values(),
                              key=lambda j: j.seq)
                return 200, {"jobs": [j.to_summary() for j in jobs]}
            raise _HttpError(405, "method-not-allowed", method)
        if path == "/v1/shutdown" and method == "POST":
            payload = self._parse_json(body) if body else {}
            drain = bool(payload.get("drain", True))
            if drain:
                self.store.draining = True   # refuse new work at once
                await self.store.drain()
            summary = self.store.stats()
            asyncio.get_running_loop().create_task(self.stop(drain=False))
            return 200, {"ok": True, "drained": drain, "stats": summary}
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            key, _, action = rest.partition("/")
            job = self.store.jobs.get(key)
            if job is None:
                raise _HttpError(404, "unknown-job", key[:64])
            if not action and method == "GET":
                return 200, job.to_summary()
            if action == "result" and method == "GET":
                if job.status == "done":
                    return 200, job.result
                if job.terminal:
                    raise _HttpError(410, f"job-{job.status}", job.error)
                raise _HttpError(409, "job-pending", job.status)
            if action == "events" and method == "GET":
                return await self._events(job, query)
            if action == "cancel" and method == "POST":
                changed = self.store.cancel(key)
                return 200, {"key": key, "status": job.status,
                             "cancelled": changed}
            raise _HttpError(404, "unknown-endpoint", path[:80])
        raise _HttpError(404, "unknown-endpoint", path[:80])

    def _parse_json(self, body):
        if not body:
            raise _HttpError(400, "empty-body",
                             "expected a JSON object body")
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise _HttpError(400, "malformed-json", str(exc)[:120]) \
                from None
        if not isinstance(payload, dict):
            raise _HttpError(400, "malformed-json",
                             f"expected an object, got "
                             f"{type(payload).__name__}")
        return payload

    async def _events(self, job, query):
        try:
            since = int(query.get("since", 0))
            wait_s = float(query.get("wait", 0))
        except ValueError:
            raise _HttpError(400, "malformed-query",
                             "since/wait must be numeric") from None
        if wait_s > 0 and len(job.events) <= since and not job.terminal:
            await job.wait_change(timeout=min(wait_s, 60.0))
        return 200, {
            "key": job.key,
            "status": job.status,
            "events": job.events[max(0, since):],
            "events_dropped": job.events_dropped,
        }

    # ------------------------------------------------------------------
    # Submission parsing
    # ------------------------------------------------------------------
    def _submit(self, payload):
        kind = payload.get("kind", "run")
        spec = payload.get("spec")
        if not isinstance(spec, dict):
            raise _HttpError(400, "malformed-spec",
                             "'spec' must be a JSON object")
        try:
            if kind == "run":
                job, deduped = self.store.submit_run(
                    self._build_runspec(spec))
            elif kind == "scenario":
                job, deduped = self._submit_scenario(payload, spec)
            elif kind == "sweep":
                job, deduped = self._submit_sweep(spec)
            else:
                raise _HttpError(400, "unknown-kind",
                                 f"{kind!r} not in run/scenario/sweep")
        except QueueFull as exc:
            raise _HttpError(503, "queue-full", str(exc)) from None
        except ServiceDraining as exc:
            raise _HttpError(503, "draining", str(exc)) from None
        return 200, {"job": job.key, "status": job.status,
                     "deduped": deduped, "kind": job.kind}

    def _build_runspec(self, spec):
        experiment = spec.get("experiment", "probe")
        if experiment not in EXPERIMENTS:
            raise _HttpError(400, "unknown-experiment",
                             f"{str(experiment)[:40]!r}; known: "
                             f"{sorted(EXPERIMENTS)}")
        overrides = spec.get("overrides", {})
        if not isinstance(overrides, dict):
            raise _HttpError(400, "malformed-spec",
                             "'overrides' must be an object")
        try:
            return RunSpec(
                experiment=experiment,
                protocol=spec.get("protocol", "mnp"),
                scale=spec.get("scale", "smoke"),
                seed=spec.get("seed", 0),
                **overrides,
            )
        except (TypeError, ValueError) as exc:
            raise _HttpError(400, "malformed-spec", str(exc)[:160]) \
                from None

    def _submit_scenario(self, payload, spec):
        from repro.conformance.spec import ScenarioSpec

        try:
            scenario = ScenarioSpec.from_dict(spec)
        except (TypeError, ValueError, KeyError) as exc:
            raise _HttpError(400, "malformed-scenario", str(exc)[:160]) \
                from None
        protocol = payload.get("protocol", "mnp")
        run_spec = RunSpec(experiment="conformance", protocol=protocol,
                           scale="smoke", seed=scenario.seed,
                           scenario=scenario.to_dict())
        return self.store.submit_run(
            run_spec, kind="scenario",
            payload={"scenario": scenario.to_dict(),
                     "protocol": protocol})

    def _submit_sweep(self, spec):
        seeds = spec.get("seeds")
        if not isinstance(seeds, list) or not seeds \
                or not all(isinstance(s, int) for s in seeds):
            raise _HttpError(400, "malformed-spec",
                             "'seeds' must be a non-empty list of ints")
        if len(seeds) > MAX_SWEEP_SEEDS:
            raise _HttpError(413, "oversized-sweep",
                             f"{len(seeds)} seeds > limit "
                             f"{MAX_SWEEP_SEEDS}")
        child_template = dict(spec)
        del child_template["seeds"]
        child_specs = [
            self._build_runspec({**child_template, "seed": seed})
            for seed in seeds
        ]
        payload = {
            "experiment": child_specs[0].experiment,
            "protocol": child_specs[0].protocol,
            "scale": child_specs[0].scale,
            "seeds": seeds,
            "overrides": child_specs[0].overrides,
        }
        return self.store.submit_sweep(child_specs, payload)
