"""Deterministic load generator for the dissemination service.

``python -m repro loadgen`` drives M concurrent clients against a
service (an external one via ``--url``, or a self-hosted in-process
server when no URL is given) with a *seeded* mix of duplicate and unique
jobs: the payload sequence is a pure function of ``(seed, jobs,
duplicate_fraction)``, so two bursts with the same seed submit the same
work -- which is exactly what the CI smoke job exploits: the second
burst must be served almost entirely from the content-hash cache, and
the result payloads must byte-compare clean across bursts
(``results_sha256``).

The burst records client-observed submit-to-terminal latency (p50/p90/
p99/max), throughput (jobs/s), and the service-side cache-hit ratio
((dedup hits + disk-cache hits) / submissions) into a JSON report,
conventionally ``BENCH_service.json``.
"""

import asyncio
import hashlib
import json
import random
import time

from repro.service.client import ServiceClient
from repro.service.server import Service


def build_payloads(seed, jobs, duplicate_fraction, experiment="probe",
                   protocol="mnp"):
    """The deterministic submission mix: ``(payloads, n_unique)``.

    Each unique payload gets a distinct simulation seed derived from the
    loadgen seed; duplicates are uniform draws over the uniques created
    so far.  The first job is always unique.
    """
    rng = random.Random(seed)
    payloads, uniques = [], []
    for _ in range(jobs):
        if uniques and rng.random() < duplicate_fraction:
            payloads.append(rng.choice(uniques))
        else:
            payload = {
                "experiment": experiment,
                "protocol": protocol,
                "scale": "smoke",
                "seed": seed * 100000 + len(uniques),
                "overrides": {},
            }
            uniques.append(payload)
            payloads.append(payload)
    return payloads, len(uniques)


def _percentile(sorted_values, q):
    """Nearest-rank percentile over an already-sorted list."""
    if not sorted_values:
        return None
    rank = min(len(sorted_values) - 1,
               max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


async def run_loadgen(url=None, clients=8, jobs=32, duplicate_fraction=0.5,
                      seed=0, workers=None, cache_dir=None,
                      experiment="probe", protocol="mnp",
                      job_timeout_s=120.0, progress=None):
    """One burst; returns the JSON-ready report dict.

    With ``url=None`` a service is self-hosted in-process (``workers``
    and ``cache_dir`` configure it) and drained afterwards; with a URL
    the target service's configuration is whatever it is.
    """
    payloads, n_unique = build_payloads(seed, jobs, duplicate_fraction,
                                        experiment=experiment,
                                        protocol=protocol)
    service = None
    if url is None:
        service = Service(workers=workers, cache_dir=cache_dir,
                          progress=progress)
        host, port = await service.start(port=0)
    else:
        parsed = ServiceClient.from_url(url)
        host, port = parsed.host, parsed.port

    control = ServiceClient(host, port)
    before = await control.stats()

    latencies_ms = [None] * jobs
    keys = [None] * jobs

    async def one_client(client_index):
        client = ServiceClient(host, port)
        try:
            for i in range(client_index, jobs, clients):
                start = time.perf_counter()
                submitted = await client.submit(payloads[i])
                record = await client.wait(submitted["job"],
                                           timeout_s=job_timeout_s)
                if record["status"] != "done":
                    raise RuntimeError(
                        f"job {submitted['job']} ended "
                        f"{record['status']}: {record.get('error')}")
                latencies_ms[i] = (time.perf_counter() - start) * 1000.0
                keys[i] = submitted["job"]
        finally:
            await client.close()

    t0 = time.perf_counter()
    await asyncio.gather(*(one_client(c)
                           for c in range(min(clients, jobs))))
    wall_s = time.perf_counter() - t0
    after = await control.stats()

    # Byte-level digest over every distinct job's result payload: two
    # bursts with the same seed must agree on it exactly.
    hasher = hashlib.sha256()
    for key in sorted(set(keys)):
        result = await control.result(key)
        hasher.update(key.encode())
        hasher.update(b"\x00")
        hasher.update(json.dumps(result, sort_keys=True,
                                 separators=(",", ":")).encode())
        hasher.update(b"\x01")
    results_sha256 = hasher.hexdigest()

    await control.close()
    if service is not None:
        await service.stop(drain=True)

    submissions = after["submissions"] - before["submissions"]
    dedup_hits = after["dedup_hits"] - before["dedup_hits"]
    cache_hits = after["cache_hits"] - before["cache_hits"]
    executions = after["executions"] - before["executions"]
    ordered = sorted(latencies_ms)
    return {
        "clients": clients,
        "jobs": jobs,
        "duplicate_fraction": duplicate_fraction,
        "seed": seed,
        "experiment": experiment,
        "protocol": protocol,
        "unique_payloads": n_unique,
        "wall_s": round(wall_s, 3),
        "jobs_per_s": round(jobs / wall_s, 3) if wall_s else None,
        "latency_ms": {
            "p50": round(_percentile(ordered, 0.50), 3),
            "p90": round(_percentile(ordered, 0.90), 3),
            "p99": round(_percentile(ordered, 0.99), 3),
            "max": round(ordered[-1], 3),
        },
        "submissions": submissions,
        "dedup_hits": dedup_hits,
        "cache_hits": cache_hits,
        "executions": executions,
        "cache_hit_ratio": round((dedup_hits + cache_hits) / submissions, 4)
        if submissions else None,
        "results_sha256": results_sha256,
    }


def render_report(report):
    """Human-readable rendering of one loadgen report."""
    lat = report["latency_ms"]
    return (
        f"loadgen: {report['jobs']} jobs "
        f"({report['unique_payloads']} unique) across "
        f"{report['clients']} client(s), seed {report['seed']}\n"
        f"  throughput:      {report['jobs_per_s']:.2f} jobs/s "
        f"({report['wall_s']:.2f}s wall)\n"
        f"  latency ms:      p50 {lat['p50']:.0f}  p90 {lat['p90']:.0f}  "
        f"p99 {lat['p99']:.0f}  max {lat['max']:.0f}\n"
        f"  cache-hit ratio: {report['cache_hit_ratio']:.2%} "
        f"({report['dedup_hits']} dedup + {report['cache_hits']} disk "
        f"over {report['submissions']} submissions; "
        f"{report['executions']} executed)\n"
        f"  results sha256:  {report['results_sha256']}"
    )
