"""MOAP -- Multihop Over-the-Air Programming (Stathopoulos et al., 2003).

The paper's characterization (§5): MOAP disseminates hop-by-hop -- a node
must receive the *entire* image before it starts advertising -- uses a
simple publish/subscribe interface to limit the number of senders (but no
sender *selection*), and repairs losses with unicast NAKs against a
sliding window.

Modeling choices: the sliding window is represented by per-segment missing
bitmaps (same memory envelope, same NAK semantics at our abstraction
level); a publisher that overhears another node's data stream defers its
own publishing for a random backoff, which is the extent of MOAP's sender
suppression.  The radio is always on.
"""

from repro.baselines.base import BaselineNode
from repro.core.messages import DataPacket
from repro.core.mnp import ProgramInfo
from repro.experiments.common import register_protocol


class Publish:
    """A full-image holder offers the program."""

    __slots__ = ("source_id", "program_id", "n_segments", "segment_packets",
                 "last_seg_packets")

    def __init__(self, source_id, program_id, n_segments, segment_packets,
                 last_seg_packets):
        self.source_id = source_id
        self.program_id = program_id
        self.n_segments = n_segments
        self.segment_packets = segment_packets
        self.last_seg_packets = last_seg_packets

    def wire_bytes(self):
        return 2 + 1 + 1 + 1 + 1


class Subscribe:
    """A receiver subscribes to a publisher's stream."""

    __slots__ = ("requester_id", "dest_id")

    def __init__(self, requester_id, dest_id):
        self.requester_id = requester_id
        self.dest_id = dest_id

    def wire_bytes(self):
        return 2 + 2


class EndOfImage:
    """Publisher finished its pass over the image."""

    __slots__ = ("source_id",)

    def __init__(self, source_id):
        self.source_id = source_id

    def wire_bytes(self):
        return 2


class Nak:
    """Unicast repair request for one segment's missing packets."""

    __slots__ = ("requester_id", "dest_id", "seg_id", "missing")

    def __init__(self, requester_id, dest_id, seg_id, missing):
        self.requester_id = requester_id
        self.dest_id = dest_id
        self.seg_id = seg_id
        self.missing = missing

    def wire_bytes(self):
        return 2 + 2 + 1 + self.missing.wire_bytes()


class MoapConfig:
    """MOAP parameters (milliseconds)."""

    def __init__(
        self,
        publish_interval_ms=2_000.0,
        publish_rounds=4,
        publish_backoff_factor=2.0,
        publish_interval_max_ms=60_000.0,
        subscribe_backoff_ms=400.0,
        data_gap_ms=15.0,
        nak_rounds=3,
        defer_ms=3_000.0,
    ):
        self.publish_interval_ms = publish_interval_ms
        self.publish_rounds = publish_rounds
        self.publish_backoff_factor = publish_backoff_factor
        self.publish_interval_max_ms = publish_interval_max_ms
        self.subscribe_backoff_ms = subscribe_backoff_ms
        self.data_gap_ms = data_gap_ms
        self.nak_rounds = nak_rounds
        self.defer_ms = defer_ms


class MoapNode(BaselineNode):
    """One MOAP node."""

    LISTEN = "listen"  # no full image yet
    PUBLISH = "publish"  # advertising the full image
    STREAM = "stream"  # sending the image
    REPAIR = "repair"  # answering NAKs

    def __init__(self, mote, config=None, image=None):
        super().__init__(mote, image=image)
        self.config = config or MoapConfig()
        self.role = self.PUBLISH if image is not None else self.LISTEN
        self._publish_timer = mote.new_timer(self._on_publish_timer, "mpub")
        self._publish_interval = self.config.publish_interval_ms
        self._publishes_sent = 0
        self._subscribers = set()
        # Streaming
        self._stream_seg = 1
        self._stream_pkt = 0
        self._stream_timer = mote.new_timer(self._send_next_data, "mtx")
        self._repair_queue = []  # (seg, pkt) pairs to retransmit
        self._repair_timer = mote.new_timer(self._on_repair_quiet, "mrep")
        # Receiving
        self._subscribe_timer = mote.new_timer(self._send_subscribe, "msub")
        self._nak_timer = mote.new_timer(self._on_nak_timer, "mnak")
        self._nak_rounds_left = 0

    # ------------------------------------------------------------------
    def start(self):
        self.mote.wake_radio()
        if self.role == self.PUBLISH:
            self._schedule_publish()

    def _per_packet_ms(self):
        sample = DataPacket(self.node_id, 1, 0, b"\x00" * 23)
        airtime = (sample.wire_bytes() + 18) * 8.0 / self.mote.channel.bitrate_kbps
        return airtime + self.config.data_gap_ms

    def _image_time_ms(self):
        total = sum(
            self.program.n_packets(s)
            for s in range(1, self.program.n_segments + 1)
        )
        return total * self._per_packet_ms()

    # ------------------------------------------------------------------
    # Publisher side
    # ------------------------------------------------------------------
    def _schedule_publish(self, defer=False):
        base = self.config.defer_ms if defer else self._publish_interval
        self._publish_timer.start(base * self.mote.rng.uniform(0.5, 1.5))

    def _on_publish_timer(self):
        if self.role != self.PUBLISH:
            return
        if self._publishes_sent >= self.config.publish_rounds:
            if self._subscribers:
                self._begin_stream()
                return
            self._publish_interval = min(
                self._publish_interval * self.config.publish_backoff_factor,
                self.config.publish_interval_max_ms,
            )
            self._publishes_sent = 0
        publish = Publish(
            self.node_id, self.program.program_id, self.program.n_segments,
            self.program.segment_packets, self.program.last_seg_packets,
        )
        self.send(publish)
        self._publishes_sent += 1
        self._schedule_publish()

    def _begin_stream(self):
        self.role = self.STREAM
        self._publish_timer.stop()
        self._stream_seg = 1
        self._stream_pkt = 0
        self.sim.tracer.emit(
            "proto.sender", node=self.node_id, seg=1,
            req_ctr=len(self._subscribers),
        )
        self._send_next_data()

    def _send_next_data(self):
        if self.role == self.REPAIR:
            self._send_next_repair()
            return
        if self.role != self.STREAM:
            return
        if self._stream_seg > self.program.n_segments:
            end = EndOfImage(self.node_id)
            self.send(end)
            self.role = self.REPAIR
            self._repair_timer.start(4 * self.config.subscribe_backoff_ms
                                     + 20 * self._per_packet_ms())
            return
        packet = DataPacket(
            self.node_id, self._stream_seg, self._stream_pkt,
            self.mote.eeprom.read(
                self.flash_key(self._stream_seg, self._stream_pkt)
            ),
        )
        self._stream_pkt += 1
        if self._stream_pkt >= self.program.n_packets(self._stream_seg):
            self._stream_seg += 1
            self._stream_pkt = 0
        self.send(packet)

    def _send_next_repair(self):
        if not self._repair_queue:
            self._repair_timer.start(4 * self.config.subscribe_backoff_ms
                                     + 20 * self._per_packet_ms())
            return
        seg_id, packet_id = self._repair_queue.pop(0)
        packet = DataPacket(
            self.node_id, seg_id, packet_id,
            self.mote.eeprom.read(self.flash_key(seg_id, packet_id)),
        )
        self.send(packet)

    def _on_repair_quiet(self):
        if self.role != self.REPAIR:
            return
        # Quiet: pass complete.  Go back to (slow) publishing.
        self.role = self.PUBLISH
        self._subscribers.clear()
        self._publishes_sent = 0
        self._schedule_publish()

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------
    def _handle_publish(self, pub):
        if self.program is None or pub.program_id > self.program.program_id:
            self.program = ProgramInfo(
                pub.program_id, pub.n_segments, pub.segment_packets,
                pub.last_seg_packets,
            )
            self.rvd_seg = 0
            self._seg_missing.clear()
        if self.role == self.LISTEN and not self.has_full_image:
            self.parent = pub.source_id
            if not self._subscribe_timer.running:
                self._subscribe_timer.start(
                    self.mote.rng.uniform(0, self.config.subscribe_backoff_ms)
                )
        elif self.role == self.PUBLISH and pub.source_id != self.node_id:
            # Another publisher nearby: defer (MOAP's sender suppression).
            self._schedule_publish(defer=True)

    def _send_subscribe(self):
        if self.role != self.LISTEN or self.parent is None:
            return
        sub = Subscribe(self.node_id, self.parent)
        self.send(sub)
        self.sim.tracer.emit(
            "proto.parent", node=self.node_id, parent=self.parent
        )

    def _handle_subscribe(self, sub):
        if sub.dest_id != self.node_id:
            return
        if self.role in (self.PUBLISH, self.STREAM):
            self._subscribers.add(sub.requester_id)
            if self.role == self.PUBLISH and \
                    self._publishes_sent >= self.config.publish_rounds:
                self._begin_stream()

    def _handle_data(self, msg):
        if self.program is None:
            return
        if self.role == self.PUBLISH:
            # Overhearing someone else's stream: defer our publishing.
            self._schedule_publish(defer=True)
            return
        if self.role != self.LISTEN or self.has_full_image:
            return
        if msg.seg_id > self.program.n_segments:
            return
        self.store_packet(msg.seg_id, msg.packet_id, msg.payload)
        self.advance_progress()
        if self.has_full_image:
            self._become_publisher()

    def _handle_end_of_image(self, msg):
        if self.role != self.LISTEN or self.program is None:
            return
        if self.has_full_image:
            return
        if msg.source_id != self.parent:
            return
        self._nak_rounds_left = self.config.nak_rounds
        self._send_nak()

    def _first_incomplete_segment(self):
        for seg_id in range(1, self.program.n_segments + 1):
            if not self.segment_complete(seg_id):
                return seg_id
        return None

    def _send_nak(self):
        seg_id = self._first_incomplete_segment()
        if seg_id is None:
            return
        nak = Nak(self.node_id, self.parent, seg_id,
                  self.missing_for(seg_id).copy())
        self.send(nak)
        self._nak_timer.start(2 * self.config.subscribe_backoff_ms
                              + 40 * self._per_packet_ms())

    def _on_nak_timer(self):
        if self.role != self.LISTEN or self.has_full_image:
            return
        self._nak_rounds_left -= 1
        if self._nak_rounds_left > 0:
            self._send_nak()
        # else: give up; the next Publish round restarts the handshake.

    def _handle_nak(self, nak):
        if nak.dest_id != self.node_id or self.role != self.REPAIR:
            return
        if not 1 <= nak.seg_id <= self.rvd_seg:
            return  # corrupted header, or a segment we cannot serve
        if nak.missing.n != self.program.n_packets(nak.seg_id):
            return  # corrupted header: vector does not fit the segment
        idle = not self._repair_queue
        self._repair_timer.stop()
        for packet_id in nak.missing.iter_set():
            if (nak.seg_id, packet_id) not in self._repair_queue:
                self._repair_queue.append((nak.seg_id, packet_id))
        if idle and self._repair_queue:
            self._send_next_repair()

    def _become_publisher(self):
        self.role = self.PUBLISH
        self._nak_timer.stop()
        self._subscribe_timer.stop()
        self._publishes_sent = 0
        self._publish_interval = self.config.publish_interval_ms
        self._subscribers.clear()
        self._schedule_publish()

    # ------------------------------------------------------------------
    def _on_send_done(self, payload):
        if isinstance(payload, DataPacket) and \
                self.role in (self.STREAM, self.REPAIR):
            self._stream_timer.start(self.config.data_gap_ms)

    def _on_frame(self, frame):
        msg = frame.payload
        if isinstance(msg, Publish):
            self._handle_publish(msg)
        elif isinstance(msg, Subscribe):
            self._handle_subscribe(msg)
        elif isinstance(msg, DataPacket):
            self._handle_data(msg)
        elif isinstance(msg, EndOfImage):
            self._handle_end_of_image(msg)
        elif isinstance(msg, Nak):
            self._handle_nak(msg)

    def __repr__(self):
        return f"<MoapNode {self.node_id} {self.role} rvd={self.rvd_seg}>"


def _make_moap(mote, config, image):
    return MoapNode(mote, config=config, image=image)


register_protocol("moap", _make_moap)
