"""Naive flooding: the broadcast-storm reference point.

Every node rebroadcasts every data packet the first time it hears it,
after a short random delay.  No handshake, no suppression, no repair --
this is the strawman that the broadcast storm literature (Ni et al.,
cited in §5) warns about.  It provides the collision-count upper bound the
suppression-scheme discussion is measured against: MNP and Deluge should
both beat it dramatically on messages sent and collisions, and flooding
generally fails the 100 %-coverage requirement because losses are never
repaired.
"""

from repro.baselines.base import BaselineNode
from repro.core.messages import DataPacket
from repro.core.mnp import ProgramInfo
from repro.experiments.common import register_protocol


class FloodAdv:
    """The base announces image geometry so receivers can track progress."""

    __slots__ = ("source_id", "program_id", "n_segments", "segment_packets",
                 "last_seg_packets")

    def __init__(self, source_id, program_id, n_segments, segment_packets,
                 last_seg_packets):
        self.source_id = source_id
        self.program_id = program_id
        self.n_segments = n_segments
        self.segment_packets = segment_packets
        self.last_seg_packets = last_seg_packets

    def wire_bytes(self):
        return 2 + 1 + 1 + 1 + 1


class FloodConfig:
    """Flooding parameters (milliseconds)."""

    def __init__(self, rebroadcast_window_ms=200.0, data_gap_ms=15.0,
                 adv_repeats=3, adv_gap_ms=300.0):
        self.rebroadcast_window_ms = rebroadcast_window_ms
        self.data_gap_ms = data_gap_ms
        self.adv_repeats = adv_repeats
        self.adv_gap_ms = adv_gap_ms


class FloodNode(BaselineNode):
    """One flooding node."""

    def __init__(self, mote, config=None, image=None):
        super().__init__(mote, image=image)
        self.config = config or FloodConfig()
        self.is_base = image is not None
        self._outbox = []  # (seg, pkt) pairs awaiting rebroadcast
        self._tx_timer = mote.new_timer(self._send_next, "ftx")
        self._adv_left = self.config.adv_repeats

    def start(self):
        self.mote.wake_radio()
        if self.is_base:
            self._tx_timer.start(self.config.adv_gap_ms)

    # ------------------------------------------------------------------
    def _send_next(self):
        if self._adv_left > 0 and self.is_base:
            self._adv_left -= 1
            adv = FloodAdv(
                self.node_id, self.program.program_id,
                self.program.n_segments, self.program.segment_packets,
                self.program.last_seg_packets,
            )
            self.send(adv)
            if self._adv_left > 0:
                self._tx_timer.start(self.config.adv_gap_ms)
            else:
                self._outbox = [
                    (seg, pkt)
                    for seg in range(1, self.program.n_segments + 1)
                    for pkt in range(self.program.n_packets(seg))
                ]
                self._tx_timer.start(self.config.data_gap_ms)
                self.sim.tracer.emit(
                    "proto.sender", node=self.node_id, seg=1, req_ctr=0
                )
            return
        if not self._outbox:
            return
        seg_id, packet_id = self._outbox.pop(0)
        packet = DataPacket(
            self.node_id, seg_id, packet_id,
            self.mote.eeprom.read(self.flash_key(seg_id, packet_id)),
        )
        self.send(packet)

    def _relay_adv(self):
        if self.program is None or not self.mote.radio.is_on:
            return
        adv = FloodAdv(
            self.node_id, self.program.program_id, self.program.n_segments,
            self.program.segment_packets, self.program.last_seg_packets,
        )
        self.send(adv)

    def _on_send_done(self, payload):
        if isinstance(payload, DataPacket) and self._outbox \
                and not self._tx_timer.running:
            self._tx_timer.start(self.config.data_gap_ms)

    # ------------------------------------------------------------------
    def _on_frame(self, frame):
        msg = frame.payload
        if isinstance(msg, FloodAdv):
            if self.program is None or msg.program_id > self.program.program_id:
                self.program = ProgramInfo(
                    msg.program_id, msg.n_segments, msg.segment_packets,
                    msg.last_seg_packets,
                )
                self.rvd_seg = 0
                self._seg_missing.clear()
                self.parent = msg.source_id
                self.sim.tracer.emit(
                    "proto.parent", node=self.node_id, parent=self.parent
                )
                # Flood the announcement too, so nodes beyond the base's
                # range learn the image geometry.
                self.sim.schedule(
                    self.mote.rng.uniform(0, self.config.rebroadcast_window_ms),
                    self._relay_adv,
                )
            return
        if not isinstance(msg, DataPacket) or self.program is None:
            return
        if self.is_base:
            return
        if msg.seg_id > self.program.n_segments:
            return
        if self.store_packet(msg.seg_id, msg.packet_id, msg.payload):
            self.parent = self.parent if self.parent is not None else msg.source_id
            # First time we hear this packet: schedule a rebroadcast.
            self._outbox.append((msg.seg_id, msg.packet_id))
            if not self._tx_timer.running:
                self._tx_timer.start(
                    self.mote.rng.uniform(0, self.config.rebroadcast_window_ms)
                )
            self.advance_progress()

    def __repr__(self):
        return f"<FloodNode {self.node_id} rvd={self.rvd_seg}>"


def _make_flood(mote, config, image):
    return FloodNode(mote, config=config, image=image)


register_protocol("flood", _make_flood)
