"""The Trickle suppression timer (Levis et al.).

Deluge's advertisement layer is Trickle: each node maintains an interval
``tau`` in ``[tau_low, tau_high]``; within each interval it picks a random
point in the second half and transmits its summary there *unless* it has
already heard at least ``k`` consistent summaries this interval.  Hearing
an *inconsistent* summary (someone is behind or ahead) resets ``tau`` to
``tau_low``; a quiet consistent interval doubles it.

The timer is protocol-agnostic: the owner supplies the ``fire`` callback
and calls :meth:`heard_consistent` / :meth:`reset` from its receive path.
"""


class TrickleTimer:
    """One Trickle instance driving periodic suppressed transmissions."""

    def __init__(self, sim, rng, fire, tau_low_ms=2_000.0,
                 tau_high_ms=60_000.0, k=1):
        if tau_low_ms <= 0 or tau_high_ms < tau_low_ms:
            raise ValueError("invalid tau bounds")
        if k < 1:
            raise ValueError("k must be >= 1")
        self.sim = sim
        self.rng = rng
        self.fire = fire
        self.tau_low_ms = tau_low_ms
        self.tau_high_ms = tau_high_ms
        self.k = k
        self.tau = tau_low_ms
        self.heard = 0
        self.suppressed_count = 0
        self.fired_count = 0
        self._interval_event = None
        self._fire_event = None
        self._running = False

    # ------------------------------------------------------------------
    def start(self):
        """(Re)start from tau_low.  Idempotent: any pending interval is
        cancelled first, so a node rebooting after a crash does not end
        up driven by two concurrent interval chains."""
        self.sim.cancel(self._interval_event)
        self.sim.cancel(self._fire_event)
        self._running = True
        self.tau = self.tau_low_ms
        self._begin_interval()

    def stop(self):
        self._running = False
        self.sim.cancel(self._interval_event)
        self.sim.cancel(self._fire_event)
        self._interval_event = self._fire_event = None

    def reset(self):
        """Inconsistency observed: shrink to tau_low and start over."""
        if not self._running:
            return
        self.sim.cancel(self._interval_event)
        self.sim.cancel(self._fire_event)
        self.tau = self.tau_low_ms
        self._begin_interval()

    def heard_consistent(self):
        """A consistent transmission was overheard this interval."""
        self.heard += 1

    # ------------------------------------------------------------------
    def _begin_interval(self):
        self.heard = 0
        point = self.rng.uniform(self.tau / 2, self.tau)
        self._fire_event = self.sim.schedule(point, self._maybe_fire)
        self._interval_event = self.sim.schedule(self.tau, self._end_interval)

    def _maybe_fire(self):
        self._fire_event = None
        if not self._running:
            return
        if self.heard >= self.k:
            self.suppressed_count += 1
            return
        self.fired_count += 1
        self.fire()

    def _end_interval(self):
        self._interval_event = None
        if not self._running:
            return
        self.tau = min(self.tau * 2, self.tau_high_ms)
        self._begin_interval()
