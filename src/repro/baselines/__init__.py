"""Baseline dissemination protocols the paper positions MNP against.

* :mod:`repro.baselines.deluge` -- Deluge (Hui & Culler, SenSys'04): page
  pipelining with Trickle-suppressed advertisements and an always-on radio.
  The paper's Section 5 comparison and the "slow diagonal" dynamic behavior
  discussion both target Deluge.
* :mod:`repro.baselines.coded_deluge` -- Deluge's control plane over a
  network-coded data plane (rank requests, random linear combinations);
  the baseline counterpart of ``coded_mnp``.
* :mod:`repro.baselines.moap` -- MOAP (Stathopoulos et al.): hop-by-hop
  whole-image transfer with publish/subscribe sender suppression and
  NAK-based repair.
* :mod:`repro.baselines.xnp` -- TinyOS XNP: the single-hop reprogrammer MNP
  replaces; it cannot cover a multihop network.
* :mod:`repro.baselines.flood` -- naive packet flooding, the broadcast-storm
  reference point.
* :mod:`repro.baselines.trickle` -- the Trickle suppression timer used by
  Deluge (also usable standalone).

Importing this package registers each protocol with
:data:`repro.experiments.common.PROTOCOLS`.
"""

from repro.baselines.trickle import TrickleTimer
from repro.baselines.deluge import DelugeConfig, DelugeNode
from repro.baselines.coded_deluge import CodedDelugeNode
from repro.baselines.moap import MoapConfig, MoapNode
from repro.baselines.xnp import XnpConfig, XnpNode
from repro.baselines.flood import FloodConfig, FloodNode

__all__ = [
    "TrickleTimer",
    "DelugeConfig",
    "DelugeNode",
    "CodedDelugeNode",
    "MoapConfig",
    "MoapNode",
    "XnpConfig",
    "XnpNode",
    "FloodConfig",
    "FloodNode",
]
