"""XNP -- the TinyOS single-hop network reprogrammer.

XNP (in TinyOS since 1.0) is what MNP replaces: the base station broadcasts
the code image to every node *within its own radio range*; there is no
forwarding.  After the broadcast pass the base runs query rounds in which
nodes NAK their missing packets and the base retransmits.

In a multihop deployment XNP's coverage tops out at the base station's
neighborhood -- exactly the limitation quoted in the paper's introduction
-- which our coverage benchmark demonstrates.
"""

from repro.baselines.base import BaselineNode
from repro.core.messages import DataPacket
from repro.core.mnp import ProgramInfo
from repro.experiments.common import register_protocol


class XnpAdv:
    """Base station announces the incoming image."""

    __slots__ = ("source_id", "program_id", "n_segments", "segment_packets",
                 "last_seg_packets")

    def __init__(self, source_id, program_id, n_segments, segment_packets,
                 last_seg_packets):
        self.source_id = source_id
        self.program_id = program_id
        self.n_segments = n_segments
        self.segment_packets = segment_packets
        self.last_seg_packets = last_seg_packets

    def wire_bytes(self):
        return 2 + 1 + 1 + 1 + 1


class XnpQuery:
    """Base station polls for losses after the broadcast pass."""

    __slots__ = ("source_id",)

    def __init__(self, source_id):
        self.source_id = source_id

    def wire_bytes(self):
        return 2


class XnpNak:
    """A node reports the missing packets of one segment."""

    __slots__ = ("requester_id", "seg_id", "missing")

    def __init__(self, requester_id, seg_id, missing):
        self.requester_id = requester_id
        self.seg_id = seg_id
        self.missing = missing

    def wire_bytes(self):
        return 2 + 1 + self.missing.wire_bytes()


class XnpConfig:
    """XNP parameters (milliseconds)."""

    def __init__(
        self,
        adv_repeats=3,
        adv_gap_ms=500.0,
        data_gap_ms=15.0,
        query_rounds=5,
        nak_backoff_ms=300.0,
    ):
        self.adv_repeats = adv_repeats
        self.adv_gap_ms = adv_gap_ms
        self.data_gap_ms = data_gap_ms
        self.query_rounds = query_rounds
        self.nak_backoff_ms = nak_backoff_ms


class XnpNode(BaselineNode):
    """One XNP node; only the base station ever transmits data."""

    def __init__(self, mote, config=None, image=None):
        super().__init__(mote, image=image)
        self.config = config or XnpConfig()
        self.is_base = image is not None
        self._adv_left = self.config.adv_repeats
        self._timer = mote.new_timer(self._on_timer, "xnp")
        self._phase = "adv" if self.is_base else "listen"
        self._stream = []  # (seg, pkt) pairs left to send this pass
        self._query_rounds_left = self.config.query_rounds
        self._nak_queue = []
        self._nak_timer = mote.new_timer(self._send_nak, "xnak")
        self.finished = False

    # ------------------------------------------------------------------
    def start(self):
        self.mote.wake_radio()
        if self.is_base:
            self._timer.start(self.config.adv_gap_ms)

    def _per_packet_ms(self):
        sample = DataPacket(self.node_id, 1, 0, b"\x00" * 23)
        airtime = (sample.wire_bytes() + 18) * 8.0 / self.mote.channel.bitrate_kbps
        return airtime + self.config.data_gap_ms

    # ------------------------------------------------------------------
    # Base station side
    # ------------------------------------------------------------------
    def _on_timer(self):
        if self._phase == "adv":
            if self._adv_left > 0:
                self._adv_left -= 1
                adv = XnpAdv(
                    self.node_id, self.program.program_id,
                    self.program.n_segments, self.program.segment_packets,
                    self.program.last_seg_packets,
                )
                self.send(adv)
                self._timer.start(self.config.adv_gap_ms)
            else:
                self._phase = "stream"
                self._stream = [
                    (seg, pkt)
                    for seg in range(1, self.program.n_segments + 1)
                    for pkt in range(self.program.n_packets(seg))
                ]
                self.sim.tracer.emit(
                    "proto.sender", node=self.node_id, seg=1, req_ctr=0
                )
                self._send_next()
        elif self._phase == "quiet":
            # End of NAK collection window: retransmit or query again.
            if self._stream:
                self._phase = "stream"
                self._send_next()
            elif self._query_rounds_left > 0:
                self._send_query()
            else:
                self._phase = "done"
                self.finished = True

    def _send_next(self):
        if self._phase != "stream":
            return
        if not self._stream:
            self._send_query()
            return
        seg_id, packet_id = self._stream.pop(0)
        packet = DataPacket(
            self.node_id, seg_id, packet_id,
            self.mote.eeprom.read(self.flash_key(seg_id, packet_id)),
        )
        self.send(packet)

    def _send_query(self):
        self._query_rounds_left -= 1
        query = XnpQuery(self.node_id)
        self.send(query)
        self._phase = "quiet"
        self._timer.start(3 * self.config.nak_backoff_ms)

    # ------------------------------------------------------------------
    # Node side
    # ------------------------------------------------------------------
    def _handle_adv(self, adv):
        if self.is_base:
            return
        if self.program is None or adv.program_id > self.program.program_id:
            self.program = ProgramInfo(
                adv.program_id, adv.n_segments, adv.segment_packets,
                adv.last_seg_packets,
            )
            self.rvd_seg = 0
            self._seg_missing.clear()
            self.parent = adv.source_id
            self.sim.tracer.emit(
                "proto.parent", node=self.node_id, parent=self.parent
            )

    def _handle_data(self, msg):
        if self.is_base or self.program is None or self.has_full_image:
            return
        self.store_packet(msg.seg_id, msg.packet_id, msg.payload)
        self.advance_progress()

    def _handle_query(self, _query):
        if self.is_base or self.program is None or self.has_full_image:
            return
        self._nak_queue = [
            seg for seg in range(1, self.program.n_segments + 1)
            if not self.segment_complete(seg)
        ]
        if self._nak_queue:
            self._nak_timer.start(
                self.mote.rng.uniform(0, self.config.nak_backoff_ms)
            )

    def _send_nak(self):
        if not self._nak_queue or self.has_full_image:
            return
        seg_id = self._nak_queue.pop(0)
        nak = XnpNak(self.node_id, seg_id, self.missing_for(seg_id).copy())
        self.send(nak)
        if self._nak_queue:
            self._nak_timer.start(self.config.nak_backoff_ms)

    def _handle_nak(self, nak):
        if not self.is_base or self._phase not in ("quiet", "stream"):
            return
        if not 1 <= nak.seg_id <= self.program.n_segments:
            return  # corrupted header that survived the link CRC
        if nak.missing.n != self.program.n_packets(nak.seg_id):
            return  # corrupted header: vector does not fit the segment
        for packet_id in nak.missing.iter_set():
            pair = (nak.seg_id, packet_id)
            if pair not in self._stream:
                self._stream.append(pair)

    # ------------------------------------------------------------------
    def _on_send_done(self, payload):
        if self.is_base and isinstance(payload, DataPacket) and \
                self._phase == "stream":
            self._timer.stop()
            self.sim.schedule(self.config.data_gap_ms, self._send_next)

    def _on_frame(self, frame):
        msg = frame.payload
        if isinstance(msg, XnpAdv):
            self._handle_adv(msg)
        elif isinstance(msg, DataPacket):
            self._handle_data(msg)
        elif isinstance(msg, XnpQuery):
            self._handle_query(msg)
        elif isinstance(msg, XnpNak):
            self._handle_nak(msg)

    def __repr__(self):
        return f"<XnpNode {self.node_id} {self._phase} rvd={self.rvd_seg}>"


def _make_xnp(mote, config, image):
    return XnpNode(mote, config=config, image=image)


register_protocol("xnp", _make_xnp)
