"""Coded Deluge: Deluge's control plane over a network-coded data plane.

Keeps everything that makes Deluge *Deluge* -- Trickle-governed
summaries, MAINTAIN/RX/TX roles, request suppression, TX-over-RX
priority -- but replaces per-packet page requests and retransmissions
with the rank machinery of :mod:`repro.core.coding`: a requester reports
its decoder rank for the next page (:class:`CodedPageRequest`), and a
server streams ``deficit + overhead`` random linear combinations
(:class:`~repro.core.messages.CodedDataPacket`) of the whole page.  Any
rank-deficit's worth of innovative combinations completes the page
regardless of *which* transmissions were lost, which is exactly where
stock Deluge's bitmap requests go quadratic under loss.
"""

from repro.baselines.deluge import DelugeConfig, DelugeNode, Summary
from repro.core.coding import CodedSegmentTracker, GenerationEncoder
from repro.core.messages import CodedDataPacket
from repro.experiments.common import register_protocol
from repro.hardware.eeprom import EepromError
from repro.sim.rng import derive_rng

#: Extra coded packets per TX round beyond the reported rank deficit.
CODED_OVERHEAD = 2

DEFAULT_FIELD = "gf256"


class CodedPageRequest:
    """Rank-report page request: ``rank`` of ``n`` combinations held.

    Deliberately *not* a :class:`~repro.baselines.deluge.PageRequest`
    subclass -- stock and coded Deluge never share an air space, and the
    wire format (two counters instead of a bitmap) is the point.
    """

    __slots__ = ("requester_id", "dest_id", "page", "n", "rank")

    def __init__(self, requester_id, dest_id, page, n, rank):
        self.requester_id = requester_id
        self.dest_id = dest_id
        self.page = page
        self.n = n
        self.rank = rank

    def deficit(self):
        return max(0, self.n - self.rank)

    def wire_bytes(self):
        return 2 + 2 + 1 + 1 + 1


class CodedDelugeNode(DelugeNode):
    """One coded-Deluge node (see module docstring)."""

    def __init__(self, mote, config=None, image=None, field=DEFAULT_FIELD,
                 overhead=CODED_OVERHEAD):
        self.field = field
        self.overhead = overhead
        self._encoders = {}  # (program_id, page) -> GenerationEncoder
        self._tx_remaining = 0
        super().__init__(mote, config=config, image=image)

    # ------------------------------------------------------------------
    # Rank-tracking receiver state
    # ------------------------------------------------------------------
    def missing_for(self, seg_id):
        tracker = self._seg_missing.get(seg_id)
        if tracker is None:
            tracker = CodedSegmentTracker(
                self.program.n_packets(seg_id), field=self.field
            )
            self._seg_missing[seg_id] = tracker
        return tracker

    # ------------------------------------------------------------------
    # RX: request by rank, absorb combinations
    # ------------------------------------------------------------------
    def _send_request(self):
        if self.has_full_image or self.program is None:
            return
        if self.role == self.TX:
            return
        if self._requests_left <= 0:
            self.role = self.MAINTAIN
            return
        self._requests_left -= 1
        page = self.rvd_seg + 1
        tracker = self.missing_for(page)
        request = CodedPageRequest(
            self.node_id, self._request_dest, page,
            tracker.n, tracker.n - tracker.count(),
        )
        self.send(request)
        self.role = self.RX
        self.parent = self._request_dest
        self.sim.tracer.emit(
            "proto.parent", node=self.node_id, parent=self.parent
        )
        self._rx_timer.start(2 * self._page_time_ms())

    def _handle_data(self, msg):
        if self.program is None or not isinstance(msg, CodedDataPacket):
            return
        page = msg.seg_id
        if page != self.rvd_seg + 1 \
                or not 1 <= page <= self.program.n_segments:
            return
        tracker = self.missing_for(page)
        if tracker.absorb(msg.coeffs, msg.payload, msg.tail_len):
            if self.role == self.RX:
                self._rx_timer.start(2 * self._page_time_ms())
        if tracker.decoded and not tracker.is_empty():
            if not self._verify_generation(page, tracker):
                return
            try:
                tracker.flush(
                    lambda pid, data: self.mote.eeprom.write(
                        self.flash_key(page, pid), data
                    )
                )
            except EepromError:
                # Baseline policy: leave the page incomplete; the normal
                # request/timeout loop retries and the flush is resumed
                # on the next received combination.
                pass
        if self.segment_complete(page):
            self.advance_progress()
            self.trickle.reset()  # new data: advertise fast
            if self.role == self.RX:
                self._rx_timer.stop()
                self.role = self.MAINTAIN

    def _verify_generation(self, seg_id, tracker):
        """Security-on digest check of the decoded generation before the
        EEPROM flush.  A tampered combination poisons the whole matrix,
        so a mismatch quarantines the entire page (tracker reset to rank
        zero) and the request/timeout loop refetches it from scratch."""
        if self.security is None or self.manifest is None:
            return True
        if self.manifest.verify_segment(seg_id, tracker.decoded_packets()):
            return True
        self.quarantines += 1
        self.mote.eeprom.discard(
            self.flash_key(seg_id, pid) for pid in range(tracker.n)
        )
        tracker.reset()
        self.sim.tracer.emit(
            "auth.quarantine", node=self.node_id, seg=seg_id,
        )
        return False

    # ------------------------------------------------------------------
    # TX: stream coded combinations
    # ------------------------------------------------------------------
    def _handle_request(self, req):
        if self.program is None:
            return
        if req.dest_id == self.node_id and 1 <= req.page <= self.rvd_seg:
            if req.n != self.program.n_packets(req.page):
                return  # corrupted header: geometry does not fit the page
            need = req.deficit() + self.overhead
            if self.role == self.TX:
                if req.page == self._tx_page:
                    # Another requester for the page in flight: stretch
                    # the round to the largest outstanding deficit (the
                    # coded analog of stock's bitmap union).
                    self._tx_remaining = max(self._tx_remaining, need)
                return
            if self.role == self.RX:
                # Serve anyway -- Deluge prioritizes transmit over receive.
                self._rx_timer.stop()
            self.role = self.TX
            self._tx_page = req.page
            self._tx_remaining = need
            self.sim.tracer.emit(
                "proto.sender", node=self.node_id, seg=req.page, req_ctr=1
            )
            self._send_next_data()
        elif req.page == self.rvd_seg + 1 and self._request_timer.running:
            # Someone else just asked for the page we need: suppress our
            # own request and snoop -- every overheard combination counts.
            self._request_timer.stop()
            self.role = self.RX
            self.parent = req.dest_id
            self._rx_timer.start(2 * self._page_time_ms())

    def _encoder_for(self, page):
        key = (self.program.program_id, page)
        encoder = self._encoders.get(key)
        if encoder is None:
            n = self.program.n_packets(page)
            packets = [
                self.mote.eeprom.read(self.flash_key(page, pid))
                for pid in range(n)
            ]
            encoder = GenerationEncoder(
                packets,
                derive_rng(self.mote.seed, "coding", self.node_id,
                           self.program.program_id, page),
                field=self.field,
            )
            self._encoders[key] = encoder
        return encoder

    def _send_next_data(self):
        if self.role != self.TX:
            return
        if self._tx_remaining <= 0:
            self.role = self.MAINTAIN
            return
        self._tx_remaining -= 1
        encoder = self._encoder_for(self._tx_page)
        coeffs, payload = encoder.next_coded()
        self.send(CodedDataPacket(
            self.node_id, self._tx_page, coeffs, payload,
            tail_len=encoder.tail_len, field=self.field,
        ))

    def _per_packet_ms(self):
        n = self.program.segment_packets if self.program else 32
        sample = CodedDataPacket(
            self.node_id, 1, (0,) * n, b"\x00" * 23, tail_len=23,
            field=self.field,
        )
        airtime = (sample.wire_bytes() + 18) * 8.0 \
            / self.mote.channel.bitrate_kbps
        return airtime + self.config.data_gap_ms

    # ------------------------------------------------------------------
    def _on_frame(self, frame):
        msg = frame.payload
        if isinstance(msg, Summary):
            self._handle_summary(msg)
        elif isinstance(msg, CodedPageRequest):
            self._handle_request(msg)
        elif isinstance(msg, CodedDataPacket):
            self._handle_data(msg)

    def __repr__(self):
        progress = f"{self.rvd_seg}/{self.program.n_segments}" \
            if self.program else "?"
        return f"<CodedDelugeNode {self.node_id} {self.role} " \
               f"pages={progress}>"


def _make_coded_deluge(mote, config, image):
    return CodedDelugeNode(mote, config=config, image=image)


register_protocol("coded_deluge", _make_coded_deluge)
