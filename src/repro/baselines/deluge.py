"""Deluge (Hui & Culler, SenSys 2004), the paper's main comparator.

Like MNP, Deluge pipelines a paged image (pages == our segments) using an
advertise/request/data handshake; *unlike* MNP it has

* no sender selection -- any node holding a requested page serves it, so
  several senders can stream concurrently in one neighborhood, colliding
  at common receivers (the hidden-terminal "slow diagonal" dynamic the
  paper cites from Hui & Culler's own measurement); and
* no sleeping -- the radio stays on for the entire reprogramming period,
  so a node's idle-listening time equals the completion time.  This is
  the basis of the paper's Section 5 energy comparison.

Advertisements are governed by a Trickle timer: suppressed when the
neighborhood already heard a consistent summary, reset to the fast rate
when new data appears.

The implementation follows the published protocol's structure (MAINTAIN /
RX / TX roles, request suppression, page-completion Trickle reset) at the
same level of abstraction as our MNP implementation so the comparison is
apples-to-apples.
"""

from repro.baselines.base import BaselineNode
from repro.baselines.trickle import TrickleTimer
from repro.core.messages import DataPacket
from repro.core.mnp import ProgramInfo
from repro.experiments.common import register_protocol


class Summary:
    """Trickle-advertised object profile: version + complete-page count."""

    __slots__ = ("source_id", "program_id", "n_segments", "segment_packets",
                 "last_seg_packets", "gamma")

    def __init__(self, source_id, program_id, n_segments, segment_packets,
                 last_seg_packets, gamma):
        self.source_id = source_id
        self.program_id = program_id
        self.n_segments = n_segments
        self.segment_packets = segment_packets
        self.last_seg_packets = last_seg_packets
        self.gamma = gamma

    def wire_bytes(self):
        return 2 + 1 + 1 + 1 + 1 + 1


class PageRequest:
    """Request for the packets of one page, with the requester's missing
    bitmap; broadcast so neighbors can suppress duplicate requests."""

    __slots__ = ("requester_id", "dest_id", "page", "missing")

    def __init__(self, requester_id, dest_id, page, missing):
        self.requester_id = requester_id
        self.dest_id = dest_id
        self.page = page
        self.missing = missing

    def wire_bytes(self):
        return 2 + 2 + 1 + self.missing.wire_bytes()


class DelugeConfig:
    """Deluge parameters (milliseconds)."""

    def __init__(
        self,
        tau_low_ms=2_000.0,
        tau_high_ms=60_000.0,
        suppression_k=1,
        request_backoff_ms=500.0,
        request_retries=3,
        data_gap_ms=15.0,
    ):
        if request_retries < 1:
            raise ValueError("request_retries must be >= 1")
        self.tau_low_ms = tau_low_ms
        self.tau_high_ms = tau_high_ms
        self.suppression_k = suppression_k
        self.request_backoff_ms = request_backoff_ms
        self.request_retries = request_retries
        self.data_gap_ms = data_gap_ms


class DelugeNode(BaselineNode):
    """One Deluge node."""

    MAINTAIN = "maintain"
    RX = "rx"
    TX = "tx"

    def __init__(self, mote, config=None, image=None):
        super().__init__(mote, image=image)
        self.config = config or DelugeConfig()
        self.role = self.MAINTAIN
        self.trickle = TrickleTimer(
            self.sim, mote.rng, self._send_summary,
            tau_low_ms=self.config.tau_low_ms,
            tau_high_ms=self.config.tau_high_ms,
            k=self.config.suppression_k,
        )
        # RX side
        self._request_timer = mote.new_timer(self._send_request, "dreq")
        self._rx_timer = mote.new_timer(self._on_rx_timeout, "drx")
        self._request_dest = None
        self._requests_left = 0
        # TX side
        self._tx_page = 0
        self._tx_vector = None
        self._tx_timer = mote.new_timer(self._send_next_data, "dtx")

    # ------------------------------------------------------------------
    def start(self):
        self.mote.wake_radio()
        self.trickle.start()

    def _per_packet_ms(self):
        sample = DataPacket(self.node_id, 1, 0, b"\x00" * 23)
        airtime = (sample.wire_bytes() + 18) * 8.0 / self.mote.channel.bitrate_kbps
        return airtime + self.config.data_gap_ms

    def _page_time_ms(self):
        packets = self.program.segment_packets if self.program else 128
        return packets * self._per_packet_ms()

    # ------------------------------------------------------------------
    # MAINTAIN: Trickle summaries
    # ------------------------------------------------------------------
    def _send_summary(self):
        if self.program is None or self.role != self.MAINTAIN:
            return
        summary = Summary(
            self.node_id, self.program.program_id, self.program.n_segments,
            self.program.segment_packets, self.program.last_seg_packets,
            self.rvd_seg,
        )
        self.send(summary)

    def _handle_summary(self, s):
        if self.program is None or s.program_id > self.program.program_id:
            # Security: summaries are unsigned, so a secured node only
            # adopts the one version its pre-provisioned manifest vouches
            # for -- forged "newer" versions and rollbacks are refused.
            if not self._accepts_version(s.program_id, s.source_id):
                return
            self.program = ProgramInfo(
                s.program_id, s.n_segments, s.segment_packets,
                s.last_seg_packets,
            )
            self.rvd_seg = 0
            self._seg_missing.clear()
            self.trickle.reset()
        if s.program_id != self.program.program_id:
            return
        if s.gamma == self.rvd_seg:
            self.trickle.heard_consistent()
        elif s.gamma > self.rvd_seg:
            # They are ahead of us: inconsistency; go ask for our next page.
            self.trickle.reset()
            if self.role == self.MAINTAIN and not self._request_timer.running:
                self._request_dest = s.source_id
                self._requests_left = self.config.request_retries
                self._request_timer.start(
                    self.mote.rng.uniform(0, self.config.request_backoff_ms)
                )
        else:
            # They are behind: our next summary will trigger their request.
            self.trickle.reset()

    # ------------------------------------------------------------------
    # RX: requesting and receiving a page
    # ------------------------------------------------------------------
    def _send_request(self):
        if self.has_full_image or self.program is None:
            return
        if self.role == self.TX:
            return
        if self._requests_left <= 0:
            self.role = self.MAINTAIN
            return
        self._requests_left -= 1
        page = self.rvd_seg + 1
        request = PageRequest(
            self.node_id, self._request_dest, page,
            self.missing_for(page).copy(),
        )
        self.send(request)
        self.role = self.RX
        self.parent = self._request_dest
        self.sim.tracer.emit(
            "proto.parent", node=self.node_id, parent=self.parent
        )
        self._rx_timer.start(2 * self._page_time_ms())

    def _on_rx_timeout(self):
        if self.role != self.RX:
            return
        if self._requests_left > 0:
            self._send_request()
        else:
            self.role = self.MAINTAIN

    def _handle_request(self, req):
        if self.program is None:
            return
        if req.dest_id == self.node_id and 1 <= req.page <= self.rvd_seg:
            if req.missing.n != self.program.n_packets(req.page):
                return  # corrupted header: vector does not fit the page
            if self.role == self.TX:
                if req.page == self._tx_page and \
                        req.missing.n == self._tx_vector.n:
                    self._tx_vector.union(req.missing)
                return
            if self.role == self.RX:
                # Serve anyway -- Deluge prioritizes transmit over receive.
                self._rx_timer.stop()
            self.role = self.TX
            self._tx_page = req.page
            self._tx_vector = req.missing.copy()
            self.sim.tracer.emit(
                "proto.sender", node=self.node_id, seg=req.page, req_ctr=1
            )
            self._send_next_data()
        elif req.page == self.rvd_seg + 1 and self._request_timer.running:
            # Someone else just asked for the page we need: suppress our
            # own request and snoop on the answer.
            self._request_timer.stop()
            self.role = self.RX
            self.parent = req.dest_id
            self._rx_timer.start(2 * self._page_time_ms())

    # ------------------------------------------------------------------
    # TX: streaming a page
    # ------------------------------------------------------------------
    def _send_next_data(self):
        if self.role != self.TX:
            return
        packet_id = self._tx_vector.first_set()
        if packet_id is None:
            self.role = self.MAINTAIN
            return
        self._tx_vector.clear(packet_id)
        packet = DataPacket(
            self.node_id, self._tx_page, packet_id,
            self.mote.eeprom.read(self.flash_key(self._tx_page, packet_id)),
        )
        self.send(packet)

    def _on_send_done(self, payload):
        if isinstance(payload, DataPacket) and self.role == self.TX:
            self._tx_timer.start(self.config.data_gap_ms)

    # ------------------------------------------------------------------
    def _handle_data(self, msg):
        if self.program is None:
            return
        if msg.seg_id != self.rvd_seg + 1:
            return
        if self.store_packet(msg.seg_id, msg.packet_id, msg.payload):
            if self.role == self.RX:
                self._rx_timer.start(2 * self._page_time_ms())
        if self.segment_complete(msg.seg_id):
            self.advance_progress()
            self.trickle.reset()  # new data: advertise fast
            if self.role == self.RX:
                self._rx_timer.stop()
                self.role = self.MAINTAIN

    def _on_frame(self, frame):
        msg = frame.payload
        if isinstance(msg, Summary):
            self._handle_summary(msg)
        elif isinstance(msg, PageRequest):
            self._handle_request(msg)
        elif isinstance(msg, DataPacket):
            self._handle_data(msg)

    def __repr__(self):
        progress = f"{self.rvd_seg}/{self.program.n_segments}" \
            if self.program else "?"
        return f"<DelugeNode {self.node_id} {self.role} pages={progress}>"


def _make_deluge(mote, config, image):
    return DelugeNode(mote, config=config, image=image)


register_protocol("deluge", _make_deluge)
