"""Shared machinery for the baseline protocol implementations.

All baselines disseminate the same :class:`repro.core.segments.CodeImage`
(pages == segments), store packets in the mote's EEPROM, and report
progress through ``proto.*`` trace records that the metrics collector
understands.  Unlike MNP they keep the radio on for the whole run, which is
precisely the behaviour the paper's energy comparison exploits.
"""

from repro.core.bitvector import BitVector
from repro.core.mnp import ProgramInfo
from repro.hardware.eeprom import EepromError
from repro.hardware.energy import EnergyModel


class BaselineNode:
    """Common receiver-side store and progress reporting."""

    def __init__(self, mote, image=None):
        self.mote = mote
        self.sim = mote.sim
        self.node_id = mote.node_id
        self.program = None
        self.rvd_seg = 0  # pages/segments complete, in order
        self._seg_missing = {}
        self.got_code_time = None
        self.parent = None
        self._energy_model = EnergyModel()
        mote.mac.on_receive = self._on_frame
        mote.mac.on_send_done = self._on_send_done
        if image is not None:
            self.program = ProgramInfo.of_image(image)
            self.rvd_seg = image.n_segments
            for segment in image.segments:
                for pkt_id, payload in enumerate(segment.packets):
                    mote.eeprom.preload(
                        self.flash_key(segment.seg_id, pkt_id), payload
                    )
            self.got_code_time = 0.0

    # ------------------------------------------------------------------
    @property
    def has_full_image(self):
        return (
            self.program is not None
            and self.rvd_seg == self.program.n_segments
        )

    def energy_nah(self):
        return self._energy_model.node_energy_nah(
            self.mote.radio, self.mote.eeprom
        )

    def flash_key(self, seg_id, packet_id):
        """Version-qualified EEPROM key for one packet."""
        return (self.program.program_id, seg_id, packet_id)

    def assemble_image(self):
        """Reassemble the image from EEPROM (None while incomplete)."""
        if not self.has_full_image:
            return None
        chunks = []
        for seg_id in range(1, self.program.n_segments + 1):
            for pkt_id in range(self.program.n_packets(seg_id)):
                chunks.append(
                    self.mote.eeprom.read(self.flash_key(seg_id, pkt_id))
                )
        return b"".join(chunks)

    # ------------------------------------------------------------------
    def missing_for(self, seg_id):
        missing = self._seg_missing.get(seg_id)
        if missing is None:
            missing = BitVector.all_set(self.program.n_packets(seg_id))
            self._seg_missing[seg_id] = missing
        return missing

    def store_packet(self, seg_id, packet_id, payload):
        """Store a packet if new; returns True when it was new.

        Fault-tolerant: a corrupted out-of-range packet id is dropped,
        and a flash write failure leaves the packet marked missing so
        the protocol's normal loss recovery re-requests it.
        """
        if self.program is None or \
                not 1 <= seg_id <= self.program.n_segments:
            return False
        missing = self.missing_for(seg_id)
        if not 0 <= packet_id < missing.n:
            return False
        if not missing.test(packet_id):
            return False
        try:
            self.mote.eeprom.write(self.flash_key(seg_id, packet_id), payload)
        except EepromError:
            return False
        missing.clear(packet_id)
        return True

    def send(self, msg):
        """Broadcast ``msg`` unless the radio is down.

        Baselines drive their transmit paths from raw simulator events
        (e.g. Deluge's Trickle timer), which keep firing through an
        injected crash or brownout; on real hardware those frames simply
        never leave the antenna.  Returns True when the frame was sent.
        """
        if not self.mote.radio.is_on:
            return False
        self.mote.mac.send(msg, msg.wire_bytes())
        return True

    def segment_complete(self, seg_id):
        return seg_id in self._seg_missing and self._seg_missing[seg_id].is_empty()

    def advance_progress(self):
        """Advance ``rvd_seg`` over every consecutively completed segment,
        emitting progress traces; returns True if full image reached."""
        advanced = False
        while (
            self.rvd_seg < self.program.n_segments
            and self.segment_complete(self.rvd_seg + 1)
        ):
            self.rvd_seg += 1
            advanced = True
            self.sim.tracer.emit(
                "mnp.got_segment", node=self.node_id, seg=self.rvd_seg,
                parent=self.parent,
            )
        if advanced and self.has_full_image and self.got_code_time is None:
            self.got_code_time = self.sim.now
            self.sim.tracer.emit("proto.got_code", node=self.node_id)
            return True
        return False

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def start(self):
        raise NotImplementedError

    def _on_frame(self, frame):
        raise NotImplementedError

    def _on_send_done(self, payload):
        """Most baselines need no send-completion pacing hook."""
