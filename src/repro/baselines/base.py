"""Shared machinery for the baseline protocol implementations.

All baselines disseminate the same :class:`repro.core.segments.CodeImage`
(pages == segments), store packets in the mote's EEPROM, and report
progress through ``proto.*`` trace records that the metrics collector
understands.  Unlike MNP they keep the radio on for the whole run, which is
precisely the behaviour the paper's energy comparison exploits.
"""

from repro.core.bitvector import BitVector
from repro.core.mnp import ProgramInfo
from repro.hardware.bootloader import InstallResult
from repro.hardware.eeprom import EepromError
from repro.hardware.energy import EnergyModel


class BaselineNode:
    """Common receiver-side store and progress reporting."""

    def __init__(self, mote, image=None):
        self.mote = mote
        self.sim = mote.sim
        self.node_id = mote.node_id
        self.program = None
        self.rvd_seg = 0  # pages/segments complete, in order
        self._seg_missing = {}
        self.got_code_time = None
        self.parent = None
        self._energy_model = EnergyModel()
        # Secure OTA pipeline (repro.core.auth), default off.  Baselines
        # have no authenticated control channel, so the signed manifest
        # is *pre-provisioned* by the deployment (a few hundred bytes,
        # flashed alongside the golden image); version admission and all
        # content checks verify against it.
        self.security = None
        self.manifest = None
        self.auth_rejects = 0
        self.quarantines = 0
        mote.mac.on_receive = self._on_frame
        mote.mac.on_send_done = self._on_send_done
        if image is not None:
            self.program = ProgramInfo.of_image(image)
            self.rvd_seg = image.n_segments
            for segment in image.segments:
                for pkt_id, payload in enumerate(segment.packets):
                    mote.eeprom.preload(
                        self.flash_key(segment.seg_id, pkt_id), payload
                    )
            self.got_code_time = 0.0

    # ------------------------------------------------------------------
    @property
    def has_full_image(self):
        return (
            self.program is not None
            and self.rvd_seg == self.program.n_segments
        )

    def energy_nah(self):
        return self._energy_model.node_energy_nah(
            self.mote.radio, self.mote.eeprom
        )

    def flash_key(self, seg_id, packet_id):
        """Version-qualified EEPROM key for one packet."""
        return (self.program.program_id, seg_id, packet_id)

    def assemble_image(self):
        """Reassemble the image from EEPROM (None while incomplete)."""
        if not self.has_full_image:
            return None
        chunks = []
        for seg_id in range(1, self.program.n_segments + 1):
            for pkt_id in range(self.program.n_packets(seg_id)):
                chunks.append(
                    self.mote.eeprom.read(self.flash_key(seg_id, pkt_id))
                )
        return b"".join(chunks)

    # ------------------------------------------------------------------
    def missing_for(self, seg_id):
        missing = self._seg_missing.get(seg_id)
        if missing is None:
            missing = BitVector.all_set(self.program.n_packets(seg_id))
            self._seg_missing[seg_id] = missing
        return missing

    def store_packet(self, seg_id, packet_id, payload):
        """Store a packet if new; returns True when it was new.

        Fault-tolerant: a corrupted out-of-range packet id is dropped,
        and a flash write failure leaves the packet marked missing so
        the protocol's normal loss recovery re-requests it.
        """
        if self.program is None or \
                not 1 <= seg_id <= self.program.n_segments:
            return False
        missing = self.missing_for(seg_id)
        if not 0 <= packet_id < missing.n:
            return False
        if not missing.test(packet_id):
            return False
        try:
            self.mote.eeprom.write(self.flash_key(seg_id, packet_id), payload)
        except EepromError:
            return False
        missing.clear(packet_id)
        return True

    def send(self, msg):
        """Broadcast ``msg`` unless the radio is down.

        Baselines drive their transmit paths from raw simulator events
        (e.g. Deluge's Trickle timer), which keep firing through an
        injected crash or brownout; on real hardware those frames simply
        never leave the antenna.  Returns True when the frame was sent.
        """
        if not self.mote.radio.is_on:
            return False
        self.mote.mac.send(msg, msg.wire_bytes())
        return True

    def segment_complete(self, seg_id):
        return seg_id in self._seg_missing and self._seg_missing[seg_id].is_empty()

    def advance_progress(self):
        """Advance ``rvd_seg`` over every consecutively completed segment,
        emitting progress traces; returns True if full image reached.

        With security enabled every segment is digest-checked against the
        pre-provisioned manifest before it is accepted; a mismatch
        quarantines the segment and stops the advance, so the protocol's
        normal loss recovery re-requests it from scratch."""
        advanced = False
        while (
            self.rvd_seg < self.program.n_segments
            and self.segment_complete(self.rvd_seg + 1)
        ):
            if not self._verify_segment(self.rvd_seg + 1):
                break
            self.rvd_seg += 1
            advanced = True
            self.sim.tracer.emit(
                "mnp.got_segment", node=self.node_id, seg=self.rvd_seg,
                parent=self.parent,
            )
        if advanced and self.has_full_image and self.got_code_time is None:
            self.got_code_time = self.sim.now
            self.sim.tracer.emit("proto.got_code", node=self.node_id)
            return True
        return False

    # ------------------------------------------------------------------
    # Secure OTA pipeline (no-ops while security is disabled)
    # ------------------------------------------------------------------
    def configure_security(self, security, manifest=None):
        """Enable authenticated dissemination (:mod:`repro.core.auth`).

        Baseline wire formats carry no signatures, so the deployment
        pre-provisions the signed :class:`~repro.core.auth.ImageManifest`
        (base stations could equally compute it from their own image);
        content and version checks then verify against it.  ``None`` or
        disabled security is a no-op, keeping golden runs bit-identical.
        """
        if security is None or not security.enabled:
            return
        self.security = security
        self.manifest = manifest

    def _accepts_version(self, program_id, source_id):
        """Version admission under security: only the manifest's exact
        program id is legitimate, and it must beat the running version
        (rollback refusal).  Always True while security is off."""
        if self.security is None:
            return True
        if (
            self.manifest is not None
            and program_id == self.manifest.program_id
            and program_id > self.mote.bootloader.running_program_id
        ):
            return True
        self.auth_rejects += 1
        self.sim.tracer.emit(
            "auth.reject", node=self.node_id, source=source_id,
            version=program_id, reason="version",
        )
        return False

    def _verify_segment(self, seg_id):
        """Digest-check a completed segment before accepting it; on a
        mismatch the staged bytes are quarantined and False returned."""
        if self.security is None or self.manifest is None:
            return True
        n = self.program.n_packets(seg_id)
        try:
            packets = [
                self.mote.eeprom.read(self.flash_key(seg_id, pid))
                for pid in range(n)
            ]
        except KeyError:
            packets = None
        if packets is not None \
                and self.manifest.verify_segment(seg_id, packets):
            return True
        self._quarantine_segment(seg_id)
        return False

    def _quarantine_segment(self, seg_id):
        """Discard a tampered segment (staged EEPROM bytes plus its
        missing bitmap) so normal loss recovery re-requests it cleanly."""
        self.quarantines += 1
        n = self.program.n_packets(seg_id)
        self.mote.eeprom.discard(
            self.flash_key(seg_id, pid) for pid in range(n)
        )
        self._seg_missing.pop(seg_id, None)
        self.sim.tracer.emit(
            "auth.quarantine", node=self.node_id, seg=seg_id,
        )

    def _quarantine_image(self):
        """Discard the whole staged image after a bootloader rejection;
        dissemination restarts from segment one."""
        if self.program is None:
            return
        self.quarantines += 1
        keys = [
            self.flash_key(seg_id, pid)
            for seg_id in range(1, self.program.n_segments + 1)
            for pid in range(self.program.n_packets(seg_id))
        ]
        self.mote.eeprom.discard(keys)
        self._seg_missing.clear()
        self.rvd_seg = 0
        self.got_code_time = None
        self.sim.tracer.emit(
            "auth.quarantine", node=self.node_id, seg=0,
        )

    def install_signal(self):
        """External start signal: hand the staged image to the bootloader
        (with manifest verification when secured); True once rebooted
        into the new program.  A signature/digest rejection quarantines
        the staged image so the node re-requests a clean copy."""
        if not self.has_full_image:
            return False
        secured = self.security is not None and self.manifest is not None
        result = self.mote.bootloader.install(
            self.program.program_id,
            self.assemble_image(),
            expected_crc=self.program.image_crc,
            manifest=self.manifest if secured else None,
            key=self.security.key if secured else None,
        )
        if result in (InstallResult.BAD_SIGNATURE,
                      InstallResult.DIGEST_MISMATCH):
            self._quarantine_image()
            return False
        if result != InstallResult.OK:
            return False
        self.mote.reboot()
        return True

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def start(self):
        raise NotImplementedError

    def _on_frame(self, frame):
        raise NotImplementedError

    def _on_send_done(self, payload):
        """Most baselines need no send-completion pacing hook."""
