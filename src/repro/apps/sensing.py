"""A periodic sensing application with convergecast routing.

The canonical workload the paper's motivation cites (habitat monitoring,
target detection): every node samples periodically and reports the
reading to a sink over a beacon-built routing tree.

* The sink floods :class:`Beacon` messages carrying a hop count; each
  node adopts the neighbor offering the smallest hop distance as its
  routing parent and re-broadcasts the beacon with ``hops+1``.
* Readings travel hop-by-hop to the sink as logically-unicast
  :class:`Reading` messages (MAC-level ``dst``, so only the addressed
  relay processes them -- no dissemination-style redundancy).

There are no link-layer retransmissions, matching the era's typical
best-effort collection stacks: a reading lost to a collision, a sleeping
relay, or a bit error is simply gone.  That makes the application's
*delivery ratio* a sensitive probe of what a reprogramming protocol does
to the network around it (the coexistence experiment).
"""


class Beacon:
    """Routing beacon: 'I can reach the sink in ``hops`` hops.'"""

    __slots__ = ("source_id", "sink_id", "hops", "round_no")

    def __init__(self, source_id, sink_id, hops, round_no):
        self.source_id = source_id
        self.sink_id = sink_id
        self.hops = hops
        self.round_no = round_no

    def wire_bytes(self):
        return 2 + 2 + 1 + 1


class Reading:
    """One sensor sample en route to the sink."""

    __slots__ = ("origin_id", "seq", "value", "relay_id", "hops_travelled")

    def __init__(self, origin_id, seq, value, relay_id, hops_travelled=0):
        self.origin_id = origin_id
        self.seq = seq
        self.value = value
        self.relay_id = relay_id
        self.hops_travelled = hops_travelled

    def wire_bytes(self):
        return 2 + 2 + 2 + 2 + 1


class SensingConfig:
    """Application parameters (milliseconds)."""

    def __init__(self, sample_interval_ms=5_000.0, beacon_interval_ms=10_000.0,
                 forward_jitter_ms=30.0):
        if sample_interval_ms <= 0 or beacon_interval_ms <= 0:
            raise ValueError("intervals must be positive")
        self.sample_interval_ms = sample_interval_ms
        self.beacon_interval_ms = beacon_interval_ms
        self.forward_jitter_ms = forward_jitter_ms


class SensingApp:
    """The sensing/collection application on one mote."""

    #: Payload classes for ProtocolMux registration.
    MESSAGE_TYPES = (Beacon, Reading)

    def __init__(self, mote, config=None, is_sink=False):
        self.mote = mote
        self.sim = mote.sim
        self.node_id = mote.node_id
        self.config = config or SensingConfig()
        self.is_sink = is_sink
        # Routing state
        self.parent = None
        self.hops_to_sink = 0 if is_sink else None
        self._beacon_round = -1
        # Traffic state
        self._seq = 0
        self.readings_generated = 0
        self.readings_delivered = {}  # origin -> set of seqs (sink only)
        self.readings_forwarded = 0
        self.readings_dropped_no_route = 0
        self._sample_timer = mote.new_timer(self._sample, "sample")
        self._beacon_timer = mote.new_timer(self._beacon, "beacon")

    # ------------------------------------------------------------------
    def start(self):
        if self.is_sink:
            self._beacon_timer.start(self.mote.rng.uniform(1.0, 100.0))
        else:
            self._sample_timer.start(
                self.mote.rng.uniform(0, self.config.sample_interval_ms)
            )

    def delivery_ratio(self, apps):
        """Sink-side: delivered readings / generated readings across the
        given application instances."""
        if not self.is_sink:
            raise RuntimeError("delivery_ratio is a sink-side metric")
        generated = sum(a.readings_generated for a in apps if not a.is_sink)
        delivered = sum(len(seqs) for seqs in self.readings_delivered.values())
        return delivered / generated if generated else None

    # ------------------------------------------------------------------
    # Beaconing (tree construction)
    # ------------------------------------------------------------------
    def _beacon(self):
        if self.mote.radio.is_on:
            self._beacon_round += 1
            beacon = Beacon(self.node_id, self.node_id, 0, self._beacon_round)
            self.mote.mac.send(beacon, beacon.wire_bytes())
        self._beacon_timer.start(
            self.config.beacon_interval_ms * self.mote.rng.uniform(0.9, 1.1)
        )

    def _handle_beacon(self, beacon):
        if self.is_sink:
            return
        better = (
            self.hops_to_sink is None
            or beacon.hops + 1 < self.hops_to_sink
            or beacon.round_no > self._beacon_round
        )
        if better:
            self.parent = beacon.source_id
            self.hops_to_sink = beacon.hops + 1
            self._beacon_round = beacon.round_no
            # Extend the tree (suppression: only on improvement/refresh).
            if self.mote.radio.is_on:
                relay = Beacon(self.node_id, beacon.sink_id,
                               self.hops_to_sink, beacon.round_no)
                self.sim.schedule(
                    self.mote.rng.uniform(1.0, self.config.forward_jitter_ms),
                    self._relay_beacon, relay,
                )

    def _relay_beacon(self, beacon):
        if self.mote.radio.is_on:
            self.mote.mac.send(beacon, beacon.wire_bytes())

    # ------------------------------------------------------------------
    # Sampling and forwarding
    # ------------------------------------------------------------------
    def _sample(self):
        self._sample_timer.start(
            self.config.sample_interval_ms * self.mote.rng.uniform(0.9, 1.1)
        )
        self._seq += 1
        self.readings_generated += 1
        if self.parent is None or not self.mote.radio.is_on:
            self.readings_dropped_no_route += 1
            return
        reading = Reading(self.node_id, self._seq,
                          value=self.mote.rng.randrange(1024),
                          relay_id=self.parent, hops_travelled=0)
        self.mote.mac.send(reading, reading.wire_bytes(), dst=self.parent)

    def _handle_reading(self, reading):
        if self.is_sink:
            self.readings_delivered.setdefault(reading.origin_id,
                                               set()).add(reading.seq)
            return
        if self.parent is None or not self.mote.radio.is_on:
            self.readings_dropped_no_route += 1
            return
        relay = Reading(reading.origin_id, reading.seq, reading.value,
                        self.parent, reading.hops_travelled + 1)
        self.readings_forwarded += 1
        self.sim.schedule(
            self.mote.rng.uniform(1.0, self.config.forward_jitter_ms),
            self._forward, relay,
        )

    def _forward(self, relay):
        if self.mote.radio.is_on:
            self.mote.mac.send(relay, relay.wire_bytes(), dst=relay.relay_id)

    # ------------------------------------------------------------------
    # Mux hooks
    # ------------------------------------------------------------------
    def _on_frame(self, frame):
        msg = frame.payload
        if isinstance(msg, Beacon):
            self._handle_beacon(msg)
        elif isinstance(msg, Reading):
            self._handle_reading(msg)

    def _on_send_done(self, payload):
        """No pacing needed: the app's traffic is sparse."""

    def __repr__(self):
        role = "sink" if self.is_sink else f"parent={self.parent}"
        return f"<SensingApp {self.node_id} {role}>"
