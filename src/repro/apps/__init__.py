"""Application layer: what the network is doing while it gets reprogrammed.

The paper's requirements section insists that code dissemination "is
supposed to be an underlying service running together with other
applications" (§2, low-memory requirement) -- reprogramming happens on a
network that is busy sensing.  This package provides that context:

* :mod:`repro.apps.mux` -- a message-type multiplexer so a dissemination
  protocol and an application share one mote's MAC;
* :mod:`repro.apps.sensing` -- a periodic sensing application with
  beacon-built convergecast routing to a sink, the canonical WSN workload
  (habitat monitoring, target detection).

The coexistence experiment (``repro.experiments.extensions``) uses these
to measure what reprogramming does to live application traffic.
"""

from repro.apps.mux import ProtocolMux
from repro.apps.sensing import Beacon, Reading, SensingApp, SensingConfig

__all__ = [
    "ProtocolMux",
    "SensingApp",
    "SensingConfig",
    "Beacon",
    "Reading",
]
