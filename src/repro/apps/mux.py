"""Sharing one MAC between protocols.

A real mote runs the reprogramming service *and* its application on one
radio stack; TinyOS dispatches incoming packets by Active Message type.
:class:`ProtocolMux` reproduces that: each client claims a set of payload
classes, and the mux routes ``on_receive`` / ``on_send_done`` callbacks
accordingly.  Outgoing traffic needs no routing -- clients call
``mote.mac.send`` directly and the MAC's FIFO interleaves them.

Attach the mux *after* constructing the clients (each protocol installs
its own hooks in its constructor; the mux takes them over).
"""


class MuxError(RuntimeError):
    """Conflicting payload-type claims."""


class ProtocolMux:
    """Type-dispatching demultiplexer over one mote's MAC."""

    def __init__(self, mote):
        self.mote = mote
        self._receive_by_type = {}
        self._send_done_by_type = {}
        self.unclaimed_frames = 0
        mote.mac.on_receive = self._on_receive
        mote.mac.on_send_done = self._on_send_done

    def attach(self, payload_types, on_frame, on_send_done=None):
        """Claim ``payload_types`` (classes) for a client.

        ``on_frame(frame)`` receives whole frames; ``on_send_done(payload)``
        is optional.  Claiming an already-claimed type raises.
        """
        for cls in payload_types:
            if cls in self._receive_by_type:
                raise MuxError(f"{cls.__name__} already claimed")
            self._receive_by_type[cls] = on_frame
            if on_send_done is not None:
                self._send_done_by_type[cls] = on_send_done
        return self

    def attach_node(self, node, payload_types):
        """Attach a protocol object exposing ``_on_frame``/``_on_send_done``
        (the convention of MNPNode and the baselines)."""
        return self.attach(payload_types, node._on_frame,
                           getattr(node, "_on_send_done", None))

    # ------------------------------------------------------------------
    def _on_receive(self, frame):
        handler = self._receive_by_type.get(type(frame.payload))
        if handler is None:
            self.unclaimed_frames += 1
            return
        handler(frame)

    def _on_send_done(self, payload):
        handler = self._send_done_by_type.get(type(payload))
        if handler is not None:
            handler(payload)
