"""Replicated MNP-vs-Deluge comparison across seeds.

The paper reports single runs and asserts repeated experiments "are
similar"; this bench replicates the headline comparison over several
paired channel realizations and checks the energy claim holds seed by
seed, not just on average.
"""

from repro.experiments.replication import (
    paired_protocol_wins,
    protocol_statistics,
    statistics_report,
)

from conftest import runner_kwargs, save_report

SEEDS = (1, 2, 3)


def test_replication_stats(benchmark):
    stats = benchmark.pedantic(
        protocol_statistics,
        kwargs={"protocols": ("mnp", "deluge"), "seeds": SEEDS,
                "rows": 6, "cols": 6, "n_segments": 2,
                "segment_packets": 32, **runner_kwargs()},
        rounds=1, iterations=1,
    )
    mnp, deluge = stats["mnp"], stats["deluge"]
    wins = paired_protocol_wins(mnp["art_s"], deluge["art_s"])
    report = statistics_report(stats)
    report += (f"\nMNP's active radio time below Deluge's in "
               f"{wins:.0%} of paired seeds")
    save_report("replication_stats", report)

    # Reliability on every seed.
    assert mnp["coverage"].min == 1.0
    assert deluge["coverage"].min == 1.0
    # The energy claim, paired: MNP's ART beats Deluge's on every seed.
    assert wins == 1.0
    # And on average with margin.
    assert mnp["art_s"].mean < 0.85 * deluge["art_s"].mean
