"""Extension (§2 coexistence): what reprogramming does to live traffic.

The paper requires dissemination to run "together with other
applications" but never measures the interaction.  This bench runs a
periodic sensing application (convergecast to a sink) in three worlds:
quiet network, MNP reprogramming, and Deluge reprogramming.

Shape claims: both protocols finish with full coverage while the app
runs; reprogramming costs application delivery; MNP's sleeping silences
relays, so its coexistence cost exceeds Deluge's -- the honest flip side
of the energy savings.
"""

from repro.experiments.extensions import coexistence, coexistence_report

from conftest import save_report


def test_ext_coexistence(benchmark):
    def run_all():
        return (
            coexistence(None, rows=6, cols=6, n_segments=2, seed=1),
            coexistence("mnp", rows=6, cols=6, n_segments=2, seed=1),
            coexistence("deluge", rows=6, cols=6, n_segments=2, seed=1),
        )

    quiet, mnp, deluge = benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_report("ext_coexistence",
                coexistence_report([quiet, mnp, deluge]))

    assert mnp.coverage == 1.0
    assert deluge.coverage == 1.0
    # Reprogramming hurts the application...
    assert mnp.delivery_ratio < quiet.delivery_ratio
    # ...and MNP's radio sleeping hurts it more than Deluge's contention.
    assert mnp.delivery_ratio < deluge.delivery_ratio
