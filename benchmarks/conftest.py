"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper and saves
its textual rendering under ``benchmarks/out/`` (also printed, visible
with ``pytest -s``).  Benchmarks honour ``REPRO_SCALE`` (default reduced
sizes; ``paper`` for the full 20x20 configuration -- see
``repro/experiments/scale.py``).

Figures 8, 9, 11, and 12 all read the same large-grid run, which is
computed once per session and cached.
"""

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


def save_report(name, text):
    """Persist a figure/table rendering and echo it to stdout."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
    return path


@pytest.fixture(scope="session")
def grid_run():
    """The shared Figs. 8/9/11/12 simulation run (computed once)."""
    from repro.experiments.active_radio import run_simulation_grid

    return run_simulation_grid(seed=1)


@pytest.fixture(scope="session")
def propagation_runs():
    """Single-segment MNP and Deluge runs for Fig. 13 (computed once)."""
    from repro.experiments.propagation import run_propagation

    return {
        "mnp": run_propagation(seed=1, protocol="mnp"),
        "deluge": run_propagation(seed=1, protocol="deluge"),
    }
