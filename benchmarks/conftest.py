"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper and saves
its textual rendering under ``benchmarks/out/`` (also printed, visible
with ``pytest -s``).  Benchmarks honour ``REPRO_SCALE`` (default reduced
sizes; ``paper`` for the full 20x20 configuration -- see
``repro/experiments/scale.py``).

Figures 8, 9, 11, and 12 all read the same large-grid run, which is
computed once per session and cached.
"""

import os
import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"
CACHE_DIR = pathlib.Path(__file__).parent / "cache"


def runner_kwargs():
    """Parallel-runner knobs for the sweep-style benchmarks.

    ``REPRO_WORKERS=N`` fans sweeps out over N worker processes
    (default 0 = serial, preserving the historical timings);
    ``REPRO_CACHE=1`` additionally persists/reuses manifests under
    ``benchmarks/cache`` so repeated invocations are incremental --
    leave it off when the wall-clock numbers themselves matter.
    """
    kwargs = {"workers": int(os.environ.get("REPRO_WORKERS", "0") or 0)}
    if os.environ.get("REPRO_CACHE"):
        kwargs["cache_dir"] = str(CACHE_DIR)
    return kwargs


def save_report(name, text):
    """Persist a figure/table rendering and echo it to stdout."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
    return path


@pytest.fixture(scope="session")
def grid_run():
    """The shared Figs. 8/9/11/12 simulation run (computed once)."""
    from repro.experiments.active_radio import run_simulation_grid

    return run_simulation_grid(seed=1)


@pytest.fixture(scope="session")
def propagation_runs():
    """Single-segment MNP and Deluge runs for Fig. 13 (computed once)."""
    from repro.experiments.propagation import run_propagation

    return {
        "mnp": run_propagation(seed=1, protocol="mnp"),
        "deluge": run_propagation(seed=1, protocol="deluge"),
    }
