"""Fig. 6: outdoor 7x7 mote grid at full power and power level 10.

Shape claims: full coverage; at full power the base station covers most
of the field directly; at power 10 more intermediate senders appear, each
with fewer followers.
"""

from repro.experiments.mote_grids import fig6_outdoor

from conftest import save_report


def test_fig6_outdoor_grid(benchmark):
    results = benchmark.pedantic(fig6_outdoor, kwargs={"seed": 1},
                                 rounds=1, iterations=1)
    report = "\n\n".join(
        results[level].render() for level in sorted(results, reverse=True)
    )
    save_report("fig6_outdoor_grid", report)

    full, low = results[255], results[10]
    assert full.run.all_complete and low.run.all_complete

    def base_children(res):
        base = res.deployment.base_id
        return sum(1 for p in res.parent_map().values() if p == base)

    n_nodes = len(full.deployment.topology)
    # Full power: the base reaches most of the 24x24 ft field directly.
    assert base_children(full) > n_nodes / 2
    # Lower power: more hops, fewer direct children of the base.
    assert base_children(low) < base_children(full)
    # ...and each sender serves a smaller group on average.
    assert len(low.sender_order()) >= len(full.sender_order())
