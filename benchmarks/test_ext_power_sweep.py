"""Extension: the full power-level curve behind Figs. 5-7.

The paper samples two power levels per grid; this bench sweeps from the
minimum connecting level to full power on the indoor 5x5 grid.

Shape claims: coverage is 100% at every connecting level; lower power
means more hops, more senders, longer completion, and higher energy --
monotone trends end to end.
"""

from repro.experiments.power_sweep import power_report, run_power_sweep

from conftest import runner_kwargs, save_report


def test_ext_power_sweep(benchmark):
    points = benchmark.pedantic(
        run_power_sweep,
        kwargs={"seed": 1, "program_packets": 128, **runner_kwargs()},
        rounds=1, iterations=1,
    )
    save_report("ext_power_sweep", power_report(points))

    assert len(points) >= 3
    assert all(p.coverage == 1.0 for p in points)
    lowest, highest = points[0], points[-1]
    # Lower power: smaller neighborhoods, more relaying work.
    assert lowest.range_ft < highest.range_ft
    assert lowest.senders > highest.senders
    assert lowest.completion_s > highest.completion_s
    assert lowest.mean_energy_nah > highest.mean_energy_nah
    # hop counts never increase with power
    hops = [p.max_hops for p in points if p.max_hops is not None]
    assert hops == sorted(hops, reverse=True)