"""Fig. 12: messages transmitted per one-minute window, by type.

Shape claims: data transmissions flow at a roughly constant rate for the
bulk of the reprogramming period (smooth pipelined propagation), with
advertisements and download requests present throughout.
"""

from repro.experiments.active_radio import fig12_report, fig12_series

from conftest import save_report
from repro.sim.kernel import MINUTE


def test_fig12_message_timeline(benchmark, grid_run):
    run = grid_run
    report = benchmark.pedantic(fig12_report, args=(run,),
                                rounds=1, iterations=1)
    save_report("fig12_message_timeline", report)

    series = fig12_series(run, window_ms=MINUTE)
    data = series["DataPacket"]
    assert sum(data) > 0
    assert sum(series["Advertisement"]) > 0
    assert sum(series["DownloadRequest"]) > 0
    # Constant-rate claim: through the bulk of the update (after ramp-up,
    # before the straggler tail) no window's data count strays wildly
    # from the median of that period.
    if len(data) >= 5:
        bulk = data[1:max(2, int(len(data) * 0.7))]
        bulk_sorted = sorted(bulk)
        median = bulk_sorted[len(bulk) // 2]
        assert median > 0
        for value in bulk:
            assert value > 0.25 * median
            assert value < 4.0 * median
