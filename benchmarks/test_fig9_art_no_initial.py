"""Fig. 9: active radio time excluding the initial idle-listening period.

Shape claims: removing the time each node spent waiting (radio on) for
its first advertisement lowers every node's number and flattens the
distribution relative to Fig. 8.
"""

from repro.experiments.active_radio import fig9_report, spread

from conftest import save_report


def test_fig9_art_no_initial(benchmark, grid_run):
    run = grid_run
    report = benchmark.pedantic(fig9_report, args=(run,),
                                rounds=1, iterations=1)
    save_report("fig9_art_no_initial", report)

    art = run.active_radio_ms()
    art_ni = run.active_radio_no_initial_ms()
    # Excluding initial idle listening can only reduce each node's time.
    for node in art:
        assert art_ni[node] <= art[node] + 1e-6
    mean = sum(art.values()) / len(art)
    mean_ni = sum(art_ni.values()) / len(art_ni)
    assert mean_ni < mean
    # "the active radio time of all nodes is closer to each other".  The
    # base station never hears a first advertisement, so it is excluded;
    # the flattening is partial at full scale because interior relays
    # stay busy pipelining every segment (see EXPERIMENTS.md).
    base = run.deployment.base_id
    others = [n for n in art if n != base]
    assert spread(art_ni[n] for n in others) <= \
        spread(art[n] for n in others) * 1.25
