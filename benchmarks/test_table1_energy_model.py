"""Table 1: per-operation energy model and a measured two-node breakdown."""

from repro.experiments.energy_table import (
    breakdown_report,
    measured_breakdown,
    table1_report,
)

from conftest import save_report


def test_table1_energy_model(benchmark):
    breakdown = benchmark.pedantic(measured_breakdown, rounds=1, iterations=1)
    report = table1_report() + "\n\n" + breakdown_report(breakdown)
    save_report("table1_energy_model", report)
    # Shape check: with the radio on for a whole dissemination, idle
    # listening dominates each node's budget (the paper's §4 premise).
    for parts in breakdown.values():
        total = sum(parts.values())
        assert parts["idle"] / total > 0.5
