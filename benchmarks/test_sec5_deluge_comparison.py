"""Section 5: MNP vs Deluge (and the other baselines) on identical
channels.

Shape claims from the paper's comparison:

* Deluge's radio is always on, so its active radio time *is* its
  completion time;
* MNP's average active radio time is a fraction of Deluge's -- the
  energy argument that motivates the whole protocol;
* MNP pays for that with somewhat longer completion time;
* XNP cannot cover a multihop network at all.
"""

import pytest

from repro.experiments.comparison import comparison_report, run_comparison

from conftest import save_report


#: The energy argument needs genuine multihop scale; a 5x5 smoke grid is
#: one or two hops and MNP's sleeping cannot amortize the handshakes, so
#: the comparison is pinned to a 10x10 grid regardless of REPRO_SCALE.
COMPARISON_DIMS = {"rows": 10, "cols": 10, "n_segments": 2,
                   "segment_packets": 64}


@pytest.fixture(scope="module")
def outcomes():
    return run_comparison(("mnp", "deluge", "moap", "xnp", "flood"),
                          seed=1, **COMPARISON_DIMS)


def test_sec5_deluge_comparison(benchmark, outcomes):
    # Benchmark a small head-to-head so the timing numbers are real but
    # cheap; the full comparison comes from the module fixture.
    benchmark.pedantic(
        run_comparison,
        kwargs={"protocols": ("mnp", "deluge"), "seed": 3, "rows": 5,
                "cols": 5, "n_segments": 1, "segment_packets": 16},
        rounds=1, iterations=1,
    )
    save_report("sec5_protocol_comparison", comparison_report(outcomes))

    by_name = {o.protocol: o for o in outcomes}
    mnp, deluge = by_name["mnp"], by_name["deluge"]

    # Reliability: both real dissemination protocols reach everyone.
    assert mnp.coverage == 1.0
    assert deluge.coverage == 1.0
    # Deluge idles at full burn: ART == completion time.
    assert deluge.art_s == pytest.approx(deluge.completion_s, rel=0.02)
    # The headline claim: MNP's radio-on time is well below Deluge's.
    assert mnp.art_s < 0.8 * deluge.art_s
    # ...bought with a completion-time premium (MNP is the slower one).
    assert mnp.completion_s > deluge.completion_s * 0.8
    # XNP cannot reprogram a multihop network.
    assert by_name["xnp"].coverage < 1.0
    # MOAP (hop-by-hop, whole image) is slower end-to-end than pipelined
    # MNP on a multihop grid.
    moap = by_name["moap"]
    if moap.coverage == 1.0:
        assert moap.completion_s > mnp.completion_s * 0.8
