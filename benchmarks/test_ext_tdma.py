"""Extension (§5/§6): MNP over a TDMA MAC.

The paper weighs TDMA-based reprogramming: collisions vanish because a
node transmits only in its assigned slots, but the approach needs time
synchronization and a known topology, and slot waiting adds latency.
This bench runs MNP over an SS-TDMA style distance-2 slot schedule and
over the stock CSMA MAC on identical networks.

Shape claims: zero collisions under TDMA; full coverage both ways; CSMA
completes faster (slots serialize everything).
"""

from repro.experiments.extensions import mnp_over_tdma

from conftest import save_report
from repro.metrics.reports import format_table


def test_ext_tdma(benchmark):
    csma_run, tdma_run, schedule = benchmark.pedantic(
        mnp_over_tdma, kwargs={"rows": 8, "cols": 8, "n_segments": 2,
                               "seed": 1},
        rounds=1, iterations=1,
    )

    def row(label, run):
        return [label, f"{run.coverage:.0%}",
                f"{run.completion_time_ms / 1000:.0f}",
                f"{run.average_active_radio_s():.0f}",
                run.collector.collisions]

    save_report("ext_tdma", format_table(
        ["MAC", "coverage", "completion(s)", "avg ART(s)", "collisions"],
        [row("CSMA", csma_run), row("TDMA", tdma_run)],
        title=f"MNP over TDMA ({schedule.n_slots}-slot distance-2 "
              "schedule) vs CSMA",
    ))

    assert csma_run.coverage == 1.0
    assert tdma_run.coverage == 1.0
    # The §5 claim: slotted transmission eliminates collisions entirely.
    assert tdma_run.collector.collisions == 0
    assert csma_run.collector.collisions > 0
    # The §5 cost: slot waiting slows dissemination.
    assert tdma_run.completion_time_ms > csma_run.completion_time_ms
