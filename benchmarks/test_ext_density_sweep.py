"""Extension: node-density sweep (the dual of the paper's power sweep).

Figs. 5-7 vary transmission power over a fixed grid; stretching the grid
spacing at fixed range probes the same neighborhood-size axis.

Shape claims (mirroring "at a lower power level, more nodes become
senders and each sender has a smaller group of followers"): sparser
deployments need more hops and elect more senders; denser deployments
concentrate forwarding in fewer senders; coverage is 100% throughout.
"""

from repro.experiments.density import density_report, run_density_sweep

from conftest import runner_kwargs, save_report

SPACINGS = (6.0, 10.0, 16.0)


def test_ext_density_sweep(benchmark):
    points = benchmark.pedantic(
        run_density_sweep,
        kwargs={"spacings": SPACINGS, "protocol": "mnp", "seed": 1,
                **runner_kwargs()},
        rounds=1, iterations=1,
    )
    deluge_points = run_density_sweep(spacings=SPACINGS,
                                      protocol="deluge", seed=1,
                                      **runner_kwargs())
    save_report("ext_density_sweep",
                density_report(points + deluge_points))

    assert all(p.coverage == 1.0 for p in points)
    # Sparser -> smaller neighborhoods -> more hops.
    hops = [p.max_hops for p in points]
    assert hops == sorted(hops) and hops[-1] > hops[0]
    # Sparser -> more distinct senders (smaller follower groups each).
    senders = [p.senders for p in points]
    assert senders[-1] > senders[0]
    # Denser -> more mutually audible traffic -> more collisions for MNP.
    assert points[0].collisions > points[-1].collisions
