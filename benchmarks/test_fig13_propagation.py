"""Fig. 13: code-propagation wavefront for a single segment, and the
anti-Deluge dynamic-behaviour claim.

Shape claims: the wavefront expands monotonically from the base corner at
a fairly constant rate; and unlike Deluge, MNP shows no slow-diagonal
dynamic (the diagonal/edge arrival-time ratio stays near 1, and does not
exceed Deluge's by the hidden-terminal margin).
"""

from repro.experiments.propagation import (
    arrival_vs_distance,
    diagonal_edge_ratio,
    fig13_report,
    snapshot,
)

from conftest import save_report


def test_fig13_propagation(benchmark, propagation_runs):
    run = propagation_runs["mnp"]
    report = benchmark.pedantic(fig13_report, args=(run,),
                                rounds=1, iterations=1)
    deluge = propagation_runs["deluge"]
    ratio_mnp = diagonal_edge_ratio(run)
    ratio_deluge = diagonal_edge_ratio(deluge)
    report += (
        f"\ndiagonal/edge arrival ratio: MNP {ratio_mnp:.2f}, "
        f"Deluge {ratio_deluge:.2f}.  The paper's claim -- MNP shows no "
        f"slow-diagonal dynamic (ratio stays near 1) -- reproduces; note "
        f"that our simplified Deluge does not recreate Hui & Culler's "
        f"pathology either at these densities (see EXPERIMENTS.md)."
    )
    save_report("fig13_propagation", report)

    assert run.all_complete
    # Monotone wavefront: the held-set only grows.
    held_30 = {n for n, v in snapshot(run, 0.3).items() if v}
    held_60 = {n for n, v in snapshot(run, 0.6).items() if v}
    held_90 = {n for n, v in snapshot(run, 0.9).items() if v}
    assert held_30 <= held_60 <= held_90
    assert len(held_30) < len(held_90)
    # Roughly constant propagation rate: mean arrival time increases
    # strictly across distance quartiles (robust to the timing noise
    # inside one distance ring).
    pairs = arrival_vs_distance(run)
    n = len(pairs)
    quartiles = [pairs[i * n // 4:(i + 1) * n // 4] for i in range(4)]
    means = [sum(t for _, t in q) / len(q) for q in quartiles if q]
    assert means == sorted(means)
    assert means[-1] > means[0]
    # No slow diagonal in MNP.
    assert ratio_mnp is not None
    assert ratio_mnp < 1.35
