"""Fig. 10: completion time and active radio time vs program size.

Shape claims: completion time grows linearly with the number of segments;
the average active radio time stays a roughly constant, small fraction of
the completion time (the paper quotes ~30%; our substrate lands in the
30-60% band at reduced scale); ART without initial idle listening is
lower still.
"""

from repro.experiments.size_sweep import fig10_report, linearity_r2, run_sweep

from conftest import runner_kwargs, save_report


def test_fig10_size_sweep(benchmark):
    points = benchmark.pedantic(run_sweep,
                                kwargs={"seed": 1, **runner_kwargs()},
                                rounds=1, iterations=1)
    save_report("fig10_size_sweep", fig10_report(points))

    assert all(p.completion_s for p in points)
    # Completion time linear in program size.
    assert linearity_r2(points) > 0.97
    sizes = [p.n_segments for p in points]
    completions = [p.completion_s for p in points]
    assert completions == sorted(completions) or len(sizes) <= 2
    # ART stays a bounded fraction of completion and shrinks relatively
    # as pipelining amortizes the handshakes.
    for p in points:
        assert p.art_fraction < 0.85
        assert p.art_no_init_s <= p.art_s
    if len(points) >= 3:
        assert points[-1].art_fraction <= points[0].art_fraction
