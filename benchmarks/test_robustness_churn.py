"""Robustness: dissemination under node churn and for late joiners.

The paper's fail-state/timeout machinery (§3.4) exists so no node waits
forever on a dead parent.  This bench kills 15% of the nodes
mid-dissemination (chosen so the survivors stay connected, per the §2
precondition) and separately powers one node up only after the network
has gone quiescent.

Shape claims: surviving nodes always reach 100% coverage with intact
images; a late joiner catches up from the backed-off advertisement
stream in bounded time.
"""

from repro.experiments.robustness import run_churn, run_late_joiner

from conftest import save_report
from repro.metrics.reports import format_table


def test_robustness_churn(benchmark):
    outcome = benchmark.pedantic(
        run_churn,
        kwargs={"rows": 6, "cols": 6, "kill_fraction": 0.15, "seed": 1,
                "n_segments": 2},
        rounds=1, iterations=1,
    )
    join_time, catch_up, dep = run_late_joiner(rows=4, cols=4, seed=1)

    rows = [
        ["15% churn mid-update",
         f"{outcome.survivor_coverage:.0%} of {outcome.survivors_total} "
         "survivors",
         f"{outcome.completion_s:.0f}",
         str(outcome.images_intact)],
        ["late joiner (quiescent net)",
         "caught up" if catch_up is not None else "stranded",
         f"{(catch_up or 0) / 1000:.0f}",
         "True"],
    ]
    save_report("robustness_churn", format_table(
        ["scenario", "outcome", "time(s)", "images intact"],
        rows, title="Robustness: churn and late arrival",
    ))

    assert outcome.survivor_coverage == 1.0
    assert outcome.images_intact
    assert len(outcome.killed) >= 4
    assert catch_up is not None
