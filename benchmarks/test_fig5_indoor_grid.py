"""Fig. 5: indoor 5x5 mote grid at power levels 1 and 2.

Shape claims: full coverage at both power levels; the sender selection
keeps the set of senders a strict subset of the nodes; at the lower power
level more nodes obtain the code from intermediate senders rather than
the base station.
"""

from repro.experiments.mote_grids import fig5_indoor

from conftest import save_report


def test_fig5_indoor_grid(benchmark):
    results = benchmark.pedantic(fig5_indoor, kwargs={"seed": 1},
                                 rounds=1, iterations=1)
    report = "\n\n".join(results[level].render() for level in sorted(results))
    save_report("fig5_indoor_grid", report)

    for level, res in results.items():
        assert res.run.all_complete, f"power {level} incomplete"
        senders = res.sender_order()
        assert senders[0] == res.deployment.base_id
        assert len(senders) < len(res.deployment.topology)

    # Lower power -> smaller base neighborhood -> fewer direct children
    # of the base station.
    def base_children(res):
        base = res.deployment.base_id
        return sum(1 for p in res.parent_map().values() if p == base)

    assert base_children(results[1]) <= base_children(results[2])
