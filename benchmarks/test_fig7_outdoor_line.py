"""Fig. 7: outdoor 2x10 mote grid (a long strip) at full power and power
level 10 -- the layout the paper uses to examine multihop behaviour.

Shape claims: full coverage; at the lower power level the strip needs
more hops, so nodes far along the strip obtain code from senders that are
themselves far from the base (senders 'move' down the strip).
"""

from repro.experiments.mote_grids import fig7_outdoor_line

from conftest import save_report


def test_fig7_outdoor_line(benchmark):
    results = benchmark.pedantic(fig7_outdoor_line, kwargs={"seed": 1},
                                 rounds=1, iterations=1)
    report = "\n\n".join(
        results[level].render() for level in sorted(results, reverse=True)
    )
    save_report("fig7_outdoor_line", report)

    full, low = results[255], results[10]
    assert full.run.all_complete and low.run.all_complete

    def mean_parent_link_ft(res):
        topo = res.deployment.topology
        links = [
            topo.distance(child, parent)
            for child, parent in res.parent_map().items()
        ]
        return sum(links) / len(links)

    # At low power the radio range shrinks, so each child's link to its
    # parent is shorter and more hops are involved.
    assert mean_parent_link_ft(low) < mean_parent_link_ft(full)
    assert len(low.sender_order()) >= len(full.sender_order())
