"""Extension (§3.3): large segments with EEPROM-tracked losses.

On small networks where pipelining cannot help, the paper allows segments
beyond the 128-packet radio-bitmap cap by moving the missing-packet
bitmap into EEPROM.  This bench disseminates the same ~5.9 KB image over
a small non-pipelined network as 2x128-packet segments (RAM bitmaps) and
as 1x256-packet segment (EEPROM bitmap).

Shape claims: both complete with intact images; the single large segment
needs fewer control messages (one handshake instead of two); the EEPROM
mode pays measurably more flash operations (the bitmap lines).
"""

from repro.core.config import MNPConfig
from repro.core.segments import CodeImage
from repro.experiments.common import Deployment
from repro.net.loss_models import EmpiricalLossModel
from repro.net.topology import Topology
from repro.radio.propagation import PropagationModel
from repro.sim.kernel import MINUTE

from conftest import save_report
from repro.metrics.reports import format_table

CONTROL_KINDS = ("Advertisement", "DownloadRequest", "StartDownload",
                 "EndDownload")


def _run(segment_packets, large):
    data = bytes((i * 19 + 5) % 256 for i in range(256 * 23))
    image = CodeImage.from_bytes(1, data, segment_packets=segment_packets,
                                 large=large)
    cfg = MNPConfig(pipelining=False, large_segments=large)
    dep = Deployment(
        Topology.grid(2, 3, 12), image=image, protocol="mnp",
        protocol_config=cfg, seed=1,
        loss_model=EmpiricalLossModel(seed=1, sigma=0.3),
        propagation=PropagationModel.outdoor(25.0),
    )
    res = dep.run_to_completion(deadline_ms=60 * MINUTE)
    control = sum(
        1 for _, _, kind in res.collector.tx_log if kind in CONTROL_KINDS
    )
    eeprom_ops = sum(m.eeprom.write_ops + m.eeprom.read_ops
                     for m in dep.motes.values())
    return {
        "res": res, "image": image, "control": control,
        "eeprom_ops": eeprom_ops,
        "completion_s": res.completion_time_ms / 1000,
    }


def test_ext_large_segments(benchmark):
    small = benchmark.pedantic(_run, args=(128, False),
                               rounds=1, iterations=1)
    big = _run(256, True)

    rows = [
        ["2 x 128 pkts (RAM bitmap)", f"{small['completion_s']:.0f}",
         small["control"], small["eeprom_ops"],
         f"{small['res'].coverage:.0%}"],
        ["1 x 256 pkts (EEPROM bitmap)", f"{big['completion_s']:.0f}",
         big["control"], big["eeprom_ops"],
         f"{big['res'].coverage:.0%}"],
    ]
    save_report("ext_large_segments", format_table(
        ["segmentation", "completion(s)", "control msgs", "EEPROM ops",
         "coverage"],
        rows, title="Large segments with EEPROM loss tracking (§3.3)",
    ))

    assert small["res"].all_complete and big["res"].all_complete
    assert small["res"].images_intact(small["image"])
    assert big["res"].images_intact(big["image"])
    # One big handshake replaces two: fewer control messages.
    assert big["control"] < small["control"]
    # ...paid for in flash traffic (the bitmap lines).
    assert big["eeprom_ops"] > small["eeprom_ops"]
