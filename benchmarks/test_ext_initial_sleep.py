"""Extension (Fig. 9 discussion): synchronized sleep before the wave
arrives.

The paper observes that far nodes burn energy idle-listening while they
wait for the propagation wave, and suggests an S-MAC/SS-TDMA style
synchronized wake/sleep schedule.  This bench duty-cycles idle nodes at
50% until their first advertisement arrives.

Shape claims: average active radio time drops, full coverage is
preserved, and completion time is not substantially hurt.
"""

from repro.experiments.extensions import initial_sleep_schedule

from conftest import save_report
from repro.metrics.reports import format_table


def test_ext_initial_sleep(benchmark):
    baseline, scheduled = benchmark.pedantic(
        initial_sleep_schedule,
        kwargs={"rows": 10, "cols": 10, "n_segments": 2, "duty": 0.5,
                "seed": 1},
        rounds=1, iterations=1,
    )
    rows = [
        ["always listening", f"{baseline.completion_time_ms / 1000:.0f}",
         f"{baseline.average_active_radio_s():.0f}",
         f"{baseline.coverage:.0%}"],
        ["50% duty cycle until first adv",
         f"{scheduled.completion_time_ms / 1000:.0f}",
         f"{scheduled.average_active_radio_s():.0f}",
         f"{scheduled.coverage:.0%}"],
    ]
    save_report("ext_initial_sleep", format_table(
        ["idle-waiting policy", "completion(s)", "avg ART(s)", "coverage"],
        rows, title="Synchronized initial sleep (Fig. 9 future work)",
    ))

    assert baseline.coverage == 1.0
    assert scheduled.coverage == 1.0
    assert scheduled.average_active_radio_s() < \
        baseline.average_active_radio_s()
    assert scheduled.completion_time_ms < 1.5 * baseline.completion_time_ms
