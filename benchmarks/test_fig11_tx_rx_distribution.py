"""Fig. 11: transmission and reception distribution over the grid.

Shape claims: the base station transmits the most messages (all data
originates there); nodes near the base transmit more than the average;
interior nodes receive more messages than corner nodes (more neighbors).
"""

from repro.experiments.active_radio import fig11_report

from conftest import save_report


def test_fig11_tx_rx_distribution(benchmark, grid_run):
    run = grid_run
    report = benchmark.pedantic(fig11_report, args=(run,),
                                rounds=1, iterations=1)
    save_report("fig11_tx_rx_distribution", report)

    tx = run.messages_sent()
    rx = run.messages_received()
    topo = run.deployment.topology
    base = run.deployment.base_id
    mean_tx = sum(tx.values()) / len(topo)
    # The base station is the top transmitter (or at least far above
    # average -- ties can occur at small scales).
    assert tx[base] > 1.5 * mean_tx
    # Interior nodes hear more than corner nodes.
    center = topo.center_node()
    corners = [topo.corner_node(c) for c in
               ("bottom-left", "bottom-right", "top-left", "top-right")]
    corner_rx = sum(rx.get(c, 0) for c in corners) / len(corners)
    assert rx.get(center, 0) > corner_rx
