"""Fig. 8: active radio time per node on the large simulated grid.

Shape claims: sleeping eliminates a large share of would-be idle
listening (mean active radio time well below the completion time), and
interior nodes accumulate less active radio time than boundary nodes.
"""

from repro.experiments.active_radio import (
    center_vs_edge_art,
    fig8_report,
    run_simulation_grid,
)

from conftest import save_report


def test_fig8_active_radio_time(benchmark, grid_run):
    # The expensive run is shared via the session fixture; the benchmark
    # measures a standalone (smaller, 1-segment) run so timing data stays
    # meaningful without paying for the big grid twice.
    benchmark.pedantic(run_simulation_grid,
                       kwargs={"seed": 2, "rows": 5, "cols": 5,
                               "n_segments": 1, "segment_packets": 16},
                       rounds=1, iterations=1)
    run = grid_run
    save_report("fig8_active_radio_time", fig8_report(run))

    assert run.all_complete
    completion = run.completion_time_ms
    mean_art = sum(run.active_radio_ms().values()) / len(run.motes)
    # Radios sleep through a sizable part of reprogramming.
    assert mean_art < 0.75 * completion
    assert run.idle_listening_savings() > 0.25
    # Spatial pattern: interior nodes are served early and sleep more.
    center, edge = center_vs_edge_art(run)
    assert center < edge
