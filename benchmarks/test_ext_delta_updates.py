"""Extension (§5 complementarity): difference-based updates through MNP.

The paper notes MNP is complementary to difference-based approaches like
Reijers & Langendoen's: sender selection and loss recovery carry *any*
data object.  This bench ships a small firmware fix both as the whole new
image and as an edit script, on identical networks.

Shape claims: the script is a small fraction of the image; completion
time, data transmissions, and energy all shrink accordingly; and every
node's reconstructed image is byte-identical to v2.
"""

from repro.experiments.extensions import delta_vs_full, update_report

from conftest import save_report


def test_ext_delta_updates(benchmark):
    full, patch, verified = benchmark.pedantic(
        delta_vs_full, kwargs={"rows": 8, "cols": 8, "n_segments": 3,
                               "change_bytes": 64, "seed": 1},
        rounds=1, iterations=1,
    )
    report = update_report([full, patch])
    report += f"\nreconstruction verified on all nodes: {verified}"
    save_report("ext_delta_updates", report)

    assert verified
    assert full.coverage == 1.0 and patch.coverage == 1.0
    # A 64-byte fix to an ~8.8 KB image: the script is tiny...
    assert patch.payload_bytes < 0.2 * full.payload_bytes
    # ...and the whole update gets proportionally cheaper.
    assert patch.completion_s < full.completion_s
    assert patch.data_tx < 0.5 * full.data_tx
    assert patch.mean_energy_nah < full.mean_energy_nah
