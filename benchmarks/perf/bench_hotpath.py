#!/usr/bin/env python
"""Hot-path events/sec microbenchmark against the recorded baseline.

Runs the :mod:`repro.profiling` workload suite on the benchmark grid,
compares it with ``BENCH_hotpath.json`` at the repository root, and (by
default) rewrites that file's ``current`` section and ``speedup`` table.

The committed JSON records two reference points:

* ``pre_pr_baseline`` -- events/sec measured on the tree immediately
  before the hot-path overhaul (interleaved A/B runs on one machine,
  median of three), together with the bit-exact *virtual* outcomes
  (event counts, simulated clock, collision totals) that any correct
  implementation must reproduce;
* ``current`` -- the most recent post-overhaul measurement.

Wall-clock and events/sec depend on the machine, so ``--check`` asserts
only the virtual outcomes (that is what CI's single-CPU perf-smoke job
verifies); speed ratios are informational unless ``--assert-speedup``
is given, which should only be used on the machine the baseline was
recorded on.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_hotpath.py
    PYTHONPATH=src python benchmarks/perf/bench_hotpath.py --check
    PYTHONPATH=src python benchmarks/perf/bench_hotpath.py \
        --assert-speedup 3.0 --phase saturation

``--megagrid`` additionally runs the 100x100 mega-scale workload twice
-- once with ``REPRO_NO_VECTOR=1`` (scalar oracle) and once vectorized
-- asserts their virtual outcomes are bit-identical, and records both
measurements plus the region-sharded variant under the bench file's
``megagrid`` section.  It is kept out of ``pre_pr_baseline.phases`` so
the fast CI ``--check`` gate stays fast.
"""

import argparse
import json
import os
import sys

BENCH_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "..",
    "BENCH_hotpath.json",
)


def _phase_by_name(report):
    return {p["workload"]["name"]: p for p in report["phases"]}


def check_virtual_outcomes(bench, report):
    """Compare the run's virtual outcomes to the recorded baseline.

    Returns a list of mismatch strings (empty = deterministic).
    """
    problems = []
    current = _phase_by_name(report)
    for name, recorded in bench["pre_pr_baseline"]["phases"].items():
        phase = current.get(name)
        if phase is None:
            problems.append(f"{name}: phase missing from this run")
            continue
        if phase["events"] != recorded["events"]:
            problems.append(
                f"{name}: events {phase['events']} != recorded "
                f"{recorded['events']}"
            )
        if phase["sim_ms"] != recorded["sim_ms"]:
            problems.append(
                f"{name}: sim_ms {phase['sim_ms']!r} != recorded "
                f"{recorded['sim_ms']!r}"
            )
        for key, want in recorded.get("checks", {}).items():
            got = phase["checks"].get(key)
            if got != want:
                problems.append(
                    f"{name}: checks[{key}] {got!r} != recorded {want!r}"
                )
    return problems


def run_megagrid(bench, rows, cols, shards):
    """Scalar-vs-vector A/B of the megagrid workload (+ sharded run).

    Returns ``(section, problems)``: the JSON section for the bench
    file and any virtual-outcome mismatches between the two channels.
    """
    from repro.profiling import profile_megagrid

    seed = bench["seed"]
    measured = {}
    for label in ("scalar", "vector"):
        if label == "scalar":
            os.environ["REPRO_NO_VECTOR"] = "1"
        else:
            os.environ.pop("REPRO_NO_VECTOR", None)
        phase = profile_megagrid(rows=rows, cols=cols, seed=seed)
        measured[label] = phase
        print(f"  megagrid[{label}]: {phase['events']} events, "
              f"{phase['wall_s']:.2f} s, "
              f"{phase['events_per_sec']:,.0f} ev/s")
    problems = []
    for key in ("events", "sim_ms", "checks"):
        if measured["scalar"][key] != measured["vector"][key]:
            problems.append(
                f"megagrid: {key} scalar={measured['scalar'][key]!r} "
                f"!= vector={measured['vector'][key]!r}"
            )
    sharded = profile_megagrid(rows=rows, cols=cols, seed=seed,
                               shards=shards)
    print(f"  megagrid[sharded {shards}x{shards}]: "
          f"{sharded['events']} events, {sharded['wall_s']:.2f} s, "
          f"{sharded['events_per_sec']:,.0f} ev/s "
          f"(approximate boundary semantics; not outcome-comparable)")
    section = {
        "grid": [rows, cols],
        "seed": seed,
        "workload": measured["vector"]["workload"],
        "checks": measured["vector"]["checks"],
        "bit_identical": not problems,
        "scalar": {k: measured["scalar"][k]
                   for k in ("events", "wall_s", "events_per_sec")},
        "vector": {k: measured["vector"][k]
                   for k in ("events", "wall_s", "events_per_sec")},
        "sharded": {
            "shards": shards,
            "events": sharded["events"],
            "wall_s": sharded["wall_s"],
            "events_per_sec": sharded["events_per_sec"],
            "checks": sharded["checks"],
            "counters": sharded["counters"],
        },
        "speedup_vector_vs_scalar":
            measured["vector"]["events_per_sec"]
            / measured["scalar"]["events_per_sec"],
    }
    return section, problems


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench-file", default=BENCH_PATH)
    parser.add_argument("--check", action="store_true",
                        help="verify virtual-outcome determinism only; "
                             "do not rewrite the bench file")
    parser.add_argument("--assert-speedup", type=float, default=None,
                        metavar="RATIO",
                        help="fail unless events/sec >= RATIO x the "
                             "recorded pre-PR baseline (same-machine "
                             "comparisons only)")
    parser.add_argument("--phase", default="saturation",
                        help="phase --assert-speedup applies to "
                             "(default saturation)")
    parser.add_argument("--megagrid", action="store_true",
                        help="also A/B the 100x100 megagrid workload "
                             "(scalar vs vector vs sharded) and record "
                             "it in the bench file")
    parser.add_argument("--megagrid-rows", type=int, default=100)
    parser.add_argument("--megagrid-cols", type=int, default=100)
    parser.add_argument("--megagrid-shards", type=int, default=2)
    args = parser.parse_args(argv)

    from repro.profiling import run_profile

    with open(args.bench_file) as fh:
        bench = json.load(fh)

    rows, cols = bench["grid"]
    report = run_profile(rows=rows, cols=cols, seed=bench["seed"])

    problems = check_virtual_outcomes(bench, report)
    baseline_phases = bench["pre_pr_baseline"]["phases"]
    speedup = {}
    print(f"hot-path bench on a {rows}x{cols} grid (seed {bench['seed']})")
    for phase in report["phases"]:
        name = phase["workload"]["name"]
        eps = phase["events_per_sec"]
        base = baseline_phases.get(name, {}).get("events_per_sec")
        line = (f"  {name}: {phase['events']} events, "
                f"{phase['wall_s']:.2f} s, {eps:,.0f} ev/s")
        if base:
            speedup[name] = eps / base
            line += (f"  ({speedup[name]:.2f}x pre-PR baseline of "
                     f"{base:,.0f})")
        print(line)

    megagrid_section = None
    if args.megagrid:
        megagrid_section, mega_problems = run_megagrid(
            bench, args.megagrid_rows, args.megagrid_cols,
            args.megagrid_shards,
        )
        problems.extend(mega_problems)

    if problems:
        print("DETERMINISM MISMATCH against recorded baseline:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("  virtual outcomes: bit-identical to the recorded baseline")

    if args.assert_speedup is not None:
        got = speedup.get(args.phase)
        if got is None:
            print(f"no baseline for phase {args.phase!r}")
            return 1
        if got < args.assert_speedup:
            print(f"FAIL: {args.phase} speedup {got:.2f}x < "
                  f"{args.assert_speedup}x")
            return 1
        print(f"  speedup gate: {args.phase} {got:.2f}x >= "
              f"{args.assert_speedup}x")

    if not args.check:
        bench["current"] = {
            "phases": {p["workload"]["name"]: p for p in report["phases"]},
            "totals": report["totals"],
        }
        bench["speedup"] = speedup
        if megagrid_section is not None:
            bench["megagrid"] = megagrid_section
        with open(args.bench_file, "w") as fh:
            json.dump(bench, fh, indent=2)
            fh.write("\n")
        print(f"  wrote {os.path.relpath(args.bench_file)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
