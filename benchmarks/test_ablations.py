"""Ablations of the design choices DESIGN.md calls out.

Each benchmark switches one pillar of MNP off (or one optional feature
on) and checks the direction of the effect on the standard grid workload.
All ablations share one baseline run per session.
"""

import pytest

from repro.experiments.ablations import (
    ablation_report,
    run_ablation,
)

from conftest import save_report


@pytest.fixture(scope="module")
def baseline():
    return run_ablation("baseline", seed=1)


def test_ablation_sender_selection(benchmark, baseline):
    """Without the ReqCtr competition, concurrent senders collide more."""
    outcome = benchmark.pedantic(
        run_ablation, args=("no-sender-selection",), kwargs={"seed": 1},
        rounds=1, iterations=1,
    )
    save_report("ablation_sender_selection",
                ablation_report([baseline, outcome]))
    assert baseline.coverage == 1.0
    # More concurrent senders -> more collisions per data packet sent.
    base_rate = baseline.collisions / max(1, baseline.data_tx)
    ablated_rate = outcome.collisions / max(1, outcome.data_tx)
    assert ablated_rate > base_rate


def test_ablation_sleep(benchmark, baseline):
    """Without sleeping, active radio time balloons toward completion
    time -- the entire energy benefit disappears."""
    outcome = benchmark.pedantic(
        run_ablation, args=("no-sleep",), kwargs={"seed": 1},
        rounds=1, iterations=1,
    )
    save_report("ablation_sleep", ablation_report([baseline, outcome]))
    assert outcome.coverage == 1.0
    assert outcome.completion_s is not None
    # no-sleep: radio on ~always
    assert outcome.art_s > 0.9 * outcome.completion_s
    # baseline sleeps a meaningful fraction away
    assert baseline.art_s < 0.75 * baseline.completion_s


def test_ablation_forward_vector(benchmark, baseline):
    """Without the ForwardVector, senders stream whole segments even when
    only a few packets were requested -> more data transmissions."""
    outcome = benchmark.pedantic(
        run_ablation, args=("no-forward-vector",), kwargs={"seed": 1},
        rounds=1, iterations=1,
    )
    save_report("ablation_forward_vector",
                ablation_report([baseline, outcome]))
    assert outcome.coverage == 1.0
    assert outcome.data_tx > baseline.data_tx


def test_ablation_pipelining(benchmark):
    """Hop-by-hop whole-image transfer cannot overlap segment transfers
    across hops: slower end-to-end on a long multihop strip.  (The paper:
    pipelining 'would be significantly helpful only when the network is
    large and several non-overlapping communication cells exist', so this
    ablation is measured on a 2x12 strip spanning ~5 hops rather than the
    scale-dependent square grid.)"""
    strip = {"rows": 2, "cols": 12, "n_segments": 3, "segment_packets": 32}
    outcome = benchmark.pedantic(
        run_ablation, args=("no-pipelining",), kwargs={"seed": 1, **strip},
        rounds=1, iterations=1,
    )
    pipelined = run_ablation("baseline", seed=1, **strip)
    save_report("ablation_pipelining", ablation_report([pipelined, outcome]))
    assert outcome.coverage == 1.0
    assert pipelined.coverage == 1.0
    assert outcome.completion_s > pipelined.completion_s


def test_ablation_query_update(benchmark, baseline):
    """The optional query/update phase repairs within a session; it must
    preserve correctness (and typically trims repair rounds)."""
    outcome = benchmark.pedantic(
        run_ablation, args=("query-update",), kwargs={"seed": 1},
        rounds=1, iterations=1,
    )
    save_report("ablation_query_update",
                ablation_report([baseline, outcome]))
    assert outcome.coverage == 1.0


def test_ablation_battery_aware(benchmark, baseline):
    """The §6 battery-aware extension must not break dissemination."""
    outcome = benchmark.pedantic(
        run_ablation, args=("battery-aware",), kwargs={"seed": 1},
        rounds=1, iterations=1,
    )
    save_report("ablation_battery_aware",
                ablation_report([baseline, outcome]))
    assert outcome.coverage == 1.0
