#!/usr/bin/env python3
"""Protocol shoot-out: MNP against every baseline, same network, same
channel.

Runs MNP, Deluge, MOAP, XNP and naive flooding over a byte-identical
channel realization (same seed => same per-edge loss factors) and prints
the Section 5-style comparison: coverage, completion time, active radio
time, message counts, collisions, and per-node energy.

The shapes to look for (they motivate the paper):

* XNP covers only the base station's neighborhood -- single-hop
  reprogramming does not scale;
* flooding sends a storm of redundant data and still misses packets;
* Deluge completes fast, but its radio never sleeps, so active radio
  time (~ energy) equals the completion time;
* MNP pays a modest completion-time premium to slash active radio time.

Run:  python examples/protocol_shootout.py
"""

from repro.experiments.comparison import comparison_report, run_comparison


def main():
    outcomes = run_comparison(
        protocols=("mnp", "deluge", "moap", "xnp", "flood"),
        seed=3,
        rows=8, cols=8, n_segments=2, segment_packets=64,
    )
    print(comparison_report(outcomes))

    by_name = {o.protocol: o for o in outcomes}
    mnp, deluge = by_name["mnp"], by_name["deluge"]
    print()
    print(f"XNP coverage: {by_name['xnp'].coverage:.0%} "
          "(single-hop cannot reprogram a multihop field)")
    if mnp.completion_s and deluge.completion_s:
        print(f"MNP active radio time: {mnp.art_s:.0f} s vs Deluge's "
              f"{deluge.art_s:.0f} s "
              f"({mnp.art_s / deluge.art_s:.0%}) -- the §5 energy claim")


if __name__ == "__main__":
    main()
