#!/usr/bin/env python3
"""Rolling out a one-function firmware fix as a binary patch.

Section 5 of the paper notes MNP is complementary to difference-based
reprogramming: its sender selection and loss recovery disseminate *any*
data object, so when the new firmware differs from the old one by a few
dozen bytes, you can ship the edit script instead of the whole image and
pay proportionally less radio time and energy.

This example:
  1. deploys a grid running firmware v1 (disseminated normally),
  2. builds a v1 -> v2 binary delta (a 48-byte fix in an ~5.9 KB image),
  3. disseminates the delta through the same MNP machinery,
  4. reconstructs and CRC-verifies v2 on every mote,
  5. prints the side-by-side cost of "full image" vs "patch".

Run:  python examples/incremental_patch_rollout.py
"""

from repro import CodeImage
from repro.core.crc import crc16_ccitt
from repro.core.delta import delta_image, reconstruct_image, savings
from repro.experiments.extensions import delta_vs_full, update_report


def main():
    # ------------------------------------------------------------------
    # The firmware versions.
    # ------------------------------------------------------------------
    v1 = CodeImage.random(1, n_segments=2, segment_packets=64, seed=21)
    v1_bytes = v1.to_bytes()
    fix = b"RET->RETI; clear watchdog before sampling ADC..."  # 48 bytes
    where = 1500
    v2_bytes = v1_bytes[:where] + fix + v1_bytes[where + len(fix):]
    v2 = CodeImage.from_bytes(2, v2_bytes, segment_packets=64)

    patch = delta_image(v1, v2)
    print(f"v1: {v1.size_bytes} B   v2: {v2.size_bytes} B   "
          f"patch: {patch.size_bytes} B "
          f"({savings(v1, v2):.0%} smaller than shipping v2)")

    # ------------------------------------------------------------------
    # Disseminate both ways over identical 8x8 multihop networks.
    # ------------------------------------------------------------------
    full, delta, verified = delta_vs_full(rows=8, cols=8, n_segments=2,
                                          change_bytes=len(fix), seed=21)
    print()
    print(update_report([full, delta]))
    print(f"\nall motes reconstructed v2 byte-identically: {verified}")

    # ------------------------------------------------------------------
    # The receiver-side arithmetic, spelled out for one mote.
    # ------------------------------------------------------------------
    rebuilt = reconstruct_image(v1_bytes, patch.to_bytes())
    assert rebuilt == v2_bytes
    print(f"v2 CRC check: {crc16_ccitt(rebuilt):#06x} == "
          f"{v2.crc16:#06x} -> safe to hand to the bootloader")


if __name__ == "__main__":
    main()
