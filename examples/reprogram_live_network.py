#!/usr/bin/env python3
"""Reprogramming a network that is busy doing its job.

Dissemination is "an underlying service running together with other
applications" (§2) -- in the field you reprogram a network that is
actively sensing.  This example runs a periodic sensing application
(readings routed hop-by-hop to a sink) while MNP and Deluge each push a
new image through, and shows the coexistence trade-off:

* MNP turns relays' radios off to save energy, so application readings
  die at sleeping hops -- lower delivery during the update;
* Deluge keeps every radio on, so the application survives better, but
  every node pays full idle-listening energy for the whole update.

Run:  python examples/reprogram_live_network.py
"""

from repro.experiments.extensions import coexistence, coexistence_report


def main():
    print("sensing app: one reading / 4 s / node, convergecast to the "
          "sink at the far corner\n")
    quiet = coexistence(None, rows=6, cols=6, n_segments=2, seed=7)
    mnp = coexistence("mnp", rows=6, cols=6, n_segments=2, seed=7)
    deluge = coexistence("deluge", rows=6, cols=6, n_segments=2, seed=7)

    print(coexistence_report([quiet, mnp, deluge]))

    print()
    if mnp.delivery_ratio < deluge.delivery_ratio:
        print("MNP's sleeping relays cost the application "
              f"{quiet.delivery_ratio - mnp.delivery_ratio:.0%} of its "
              "delivery during the update -- the flip side of its energy "
              "savings.")
    print("Plan reprogramming windows accordingly: MNP minimizes energy, "
          "an always-on protocol minimizes application disruption.")


if __name__ == "__main__":
    main()
