#!/usr/bin/env python3
"""Quickstart: disseminate a program image over a simulated sensor grid.

This is the five-minute tour of the library: build a topology, make a
code image, run MNP over a lossy multihop channel, and inspect the
metrics the paper reports -- completion time, active radio time, parents,
and sender order.

Run:  python examples/quickstart.py
"""

from repro import (
    MINUTE,
    CodeImage,
    Deployment,
    MNPConfig,
    PropagationModel,
    Topology,
)
from repro.metrics.reports import format_grid


def main():
    # A 6x6 grid, 10 ft between nodes; radios reach ~25 ft, so the far
    # corner is several hops from the base station.
    topology = Topology.grid(6, 6, spacing_ft=10)

    # A new program image: 2 segments x 64 packets x 23 bytes (~2.9 KB).
    image = CodeImage.random(program_id=1, n_segments=2, segment_packets=64)

    deployment = Deployment(
        topology,
        image=image,
        protocol="mnp",
        protocol_config=MNPConfig(),  # every §3 knob lives here
        propagation=PropagationModel(25.0, 3.0),
        seed=42,
    )
    result = deployment.run_to_completion(deadline_ms=60 * MINUTE)

    print(f"nodes reprogrammed: {result.coverage:.0%}")
    print(f"completion time:    {result.completion_time_min:.1f} min")
    print(f"avg active radio:   {result.average_active_radio_s():.0f} s "
          f"({result.idle_listening_savings():.0%} of idle listening "
          f"eliminated by sleeping)")
    print(f"images intact:      {result.images_intact(image)}")
    print(f"sender order:       {result.sender_order()}")
    print()
    print("who each node downloaded from (its parent):")
    parents = {n: float(p) for n, p in result.parent_map().items()}
    parents[deployment.base_id] = float(deployment.base_id)
    print(format_grid(parents, topology, fmt="{:3.0f}"))

    # Finally, send the external start signal (§3.5) so the motes reboot
    # into the new program.
    rebooted = sum(node.install_signal() for node in
                   deployment.nodes.values())
    print(f"\ninstall signal sent: {rebooted}/{len(topology)} rebooted")


if __name__ == "__main__":
    main()
