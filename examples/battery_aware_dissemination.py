#!/usr/bin/env python3
"""The §6 battery-aware extension: spare the depleted nodes.

The paper's conclusion sketches a tuning where "the probability that a
sensor is given the responsibility of transmitting the code is
proportional to its remaining battery life": a low-battery node
advertises at reduced transmission power, reaches fewer requesters, and
therefore loses the sender selection to healthier rivals.

This example deploys a dense grid in which half the motes start at 20%
battery, runs dissemination with the extension on and off, and compares
how much forwarding work landed on the weak motes.

Run:  python examples/battery_aware_dissemination.py
"""

from repro import (
    MINUTE,
    CodeImage,
    Deployment,
    MNPConfig,
    PropagationModel,
    Topology,
)
from repro.metrics.reports import format_table

WEAK_FRACTION = 0.2  # weak motes start at 20% battery


def run(battery_aware, seed=11):
    topology = Topology.grid(6, 6, spacing_ft=8)
    image = CodeImage.random(program_id=1, n_segments=2, segment_packets=64,
                             seed=seed)
    deployment = Deployment(
        topology,
        image=image,
        protocol="mnp",
        protocol_config=MNPConfig(battery_aware_power=battery_aware),
        propagation=PropagationModel(25.0, 3.0),
        seed=seed,
    )
    # Every odd mote has been running a hungry duty cycle for months.
    weak = {n for n in topology.node_ids() if n % 2 == 1}
    for node_id in weak:
        battery = deployment.motes[node_id].battery
        battery.remaining_nah = battery.capacity_nah * WEAK_FRACTION
    result = deployment.run_to_completion(deadline_ms=2 * 60 * MINUTE)
    assert result.all_complete

    data_tx = {n: 0 for n in topology.node_ids()}
    for _, node, kind in result.collector.tx_log:
        if kind == "DataPacket":
            data_tx[node] += 1
    weak_tx = sum(v for n, v in data_tx.items() if n in weak)
    strong_tx = sum(v for n, v in data_tx.items() if n not in weak)
    return {
        "completion_min": result.completion_time_min,
        "weak_tx": weak_tx,
        "strong_tx": strong_tx,
        "weak_share": weak_tx / max(1, weak_tx + strong_tx),
    }


def main():
    plain = run(battery_aware=False)
    aware = run(battery_aware=True)

    print(format_table(
        ["mode", "completion (min)", "data tx by weak motes",
         "data tx by strong motes", "weak share"],
        [
            ["standard MNP", f"{plain['completion_min']:.1f}",
             plain["weak_tx"], plain["strong_tx"],
             f"{plain['weak_share']:.0%}"],
            ["battery-aware", f"{aware['completion_min']:.1f}",
             aware["weak_tx"], aware["strong_tx"],
             f"{aware['weak_share']:.0%}"],
        ],
        title="forwarding load vs battery state (36 motes, half at "
              f"{WEAK_FRACTION:.0%} battery)",
    ))
    if aware["weak_share"] < plain["weak_share"]:
        print("\nbattery-aware advertising shifted forwarding work off "
              "the depleted motes.")
    else:
        print("\nno shift this run -- try more seeds; the effect is "
              "probabilistic.")


if __name__ == "__main__":
    main()
