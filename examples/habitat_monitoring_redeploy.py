#!/usr/bin/env python3
"""Reprogramming a habitat-monitoring transect in place.

The paper motivates network reprogramming with long-lived unattended
deployments like the Great Duck Island habitat-monitoring network (its
energy numbers, Table 1, come from that project).  This example models
the canonical scenario: a 2x12 strip of motes along a transect, deployed
months ago, that needs a new firmware image with a fixed sensing bug --
and physically collecting the motes is not an option.

It walks through the full operational story:
  1. disseminate the new image with MNP over the multihop strip,
  2. audit reliability (coverage + byte-exact accuracy, §2),
  3. audit the energy bill per node against remaining battery,
  4. send the external start signal to reboot the fleet (§3.5).

Run:  python examples/habitat_monitoring_redeploy.py
"""

from repro import (
    MINUTE,
    CodeImage,
    Deployment,
    EmpiricalLossModel,
    MNPConfig,
    PropagationModel,
    Topology,
)
from repro.metrics.reports import format_table


def main():
    # A long thin deployment: 2 rows x 12 columns, 15 ft apart, following
    # a transect.  The base station (gateway) sits at one end.
    topology = Topology.grid(2, 12, spacing_ft=15)

    # The new firmware: ~8.9 KB, i.e. 3 full segments plus a short one.
    firmware = bytes(
        (7 * i + 13) % 256 for i in range(8 * 1024 + 900)
    )
    image = CodeImage.from_bytes(2, firmware)  # program id 2: an upgrade

    deployment = Deployment(
        topology,
        image=image,
        protocol="mnp",
        # Field deployments favour the query/update repair phase: a
        # parent patches its own children instead of burning extra
        # advertise/download rounds (§3.3).
        protocol_config=MNPConfig(query_update=True),
        propagation=PropagationModel.outdoor(40.0),
        loss_model=EmpiricalLossModel(seed=7),
        seed=7,
    )
    print(f"disseminating {image.size_bytes} bytes "
          f"({image.n_segments} segments) over a "
          f"{len(topology)}-node transect...")
    result = deployment.run_to_completion(deadline_ms=4 * 60 * MINUTE)

    # ------------------------------------------------------------------
    # 1. Reliability audit: every mote, byte-identical.
    # ------------------------------------------------------------------
    assert result.all_complete, "some motes missed the image!"
    assert result.images_intact(image), "image corruption detected!"
    print(f"coverage 100% in {result.completion_time_min:.1f} min; "
          "all images byte-identical")

    # ------------------------------------------------------------------
    # 2. Energy audit: what did the update cost each mote?
    # ------------------------------------------------------------------
    energy = result.energy_nah()
    art = result.active_radio_ms()
    rows = []
    for node_id in sorted(topology.node_ids()):
        node = deployment.nodes[node_id]
        rows.append([
            node_id,
            f"{art[node_id] / 1000:.0f}",
            f"{energy[node_id] / 1000:.1f}",
            f"{node.battery_fraction():.3%}",
            "gateway" if node_id == deployment.base_id else
            f"from {result.parent_map().get(node_id, '-')}",
        ])
    print()
    print(format_table(
        ["mote", "radio on (s)", "energy (uAh)", "battery left", "source"],
        rows, title="per-mote cost of the update",
    ))
    mean_uah = sum(energy.values()) / len(energy) / 1000
    print(f"\nmean cost: {mean_uah:.1f} uAh "
          f"(~{mean_uah / 2.8e6:.5%} of a 2.8 Ah AA budget)")

    # ------------------------------------------------------------------
    # 3. Activate the new firmware.
    # ------------------------------------------------------------------
    for node in deployment.nodes.values():
        node.install_signal()
    print("start signal sent -- transect is now running firmware v2")


if __name__ == "__main__":
    main()
